package stanford

import (
	"testing"

	"repro/internal/treediff"
)

func buildSmall(t *testing.T) *Backbone {
	t.Helper()
	b, err := Build(Config{Seed: 1, ForwardingEntries: 300, ACLRules: 30, BackgroundPackets: 100})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTopologyShape(t *testing.T) {
	if len(OZRouters()) != 14 {
		t.Error("paper: 14 OZ routers")
	}
	if len(BackboneRouters()) != 2 {
		t.Error("paper: 2 backbone routers")
	}
}

func TestForwardingErrorReproduces(t *testing.T) {
	b := buildSmall(t)
	if !b.Net.Arrived(b.Zone2Hosts, b.GoodHeader) {
		t.Error("the reference packet must reach the zone (H1 can reach 172.19.254.0/24)")
	}
	if !b.Net.Arrived(b.DropNode, b.BadHeader) {
		t.Error("the bad packet must be dropped by the faulty entry")
	}
	if b.Net.Arrived(b.Zone2Hosts, b.BadHeader) {
		t.Error("the bad packet must not reach the zone")
	}
}

func TestTreeSizesMatchPaperShape(t *testing.T) {
	b := buildSmall(t)
	good, bad, err := b.Trees()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: trees of 67 and 75 nodes (smaller than SDN1-4: only two
	// intermediate hops); plain diff 108 nodes.
	if good.Size() < 10 || good.Size() > 300 {
		t.Errorf("good tree = %d vertexes, want tens", good.Size())
	}
	if bad.Size() < 5 || bad.Size() > 300 {
		t.Errorf("bad tree = %d vertexes, want tens", bad.Size())
	}
	diff := treediff.PlainDiff(good, bad)
	if diff == 0 {
		t.Error("plain diff must be non-empty")
	}
	t.Logf("trees %d/%d vertexes, plain diff %d (paper: 67/75, diff 108)",
		good.Size(), bad.Size(), diff)
}

func TestDiagnosisFindsTheFault(t *testing.T) {
	b := buildSmall(t)
	res, err := b.Diagnose()
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly the misconfigured entry", res.Changes)
	}
	if !b.IsFaultChange(res.Changes[0]) {
		t.Fatalf("change = %v, want deletion of %s on %s", res.Changes[0], b.FaultEntry, b.S2)
	}
}

func TestDiagnosisResilientToNoise(t *testing.T) {
	// More faults, more background traffic, different seed: the
	// diagnosis must not be confused by unrelated problems (§6.7:
	// "despite the 20 other concurrent faults and the heavy background
	// traffic").
	b, err := Build(Config{Seed: 99, ForwardingEntries: 800, ACLRules: 80, ExtraFaults: 20, BackgroundPackets: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Diagnose()
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 || !b.IsFaultChange(res.Changes[0]) {
		t.Fatalf("Δ = %v, want exactly the misconfigured entry", res.Changes)
	}
}

func TestDeterministicBuild(t *testing.T) {
	b1 := buildSmall(t)
	b2 := buildSmall(t)
	s1 := b1.Net.Session().Live().Stats()
	s2 := b2.Net.Session().Live().Stats()
	if s1 != s2 {
		t.Errorf("builds differ: %+v vs %+v", s1, s2)
	}
}

func TestScaleParameters(t *testing.T) {
	b, err := Build(Config{Seed: 2, ForwardingEntries: 50, ACLRules: 5, ExtraFaults: 4, BackgroundPackets: 20, Protocols: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Entry count: generated + scenario entries land on the routers.
	total := 0
	for _, r := range append(OZRouters(), BackboneRouters()...) {
		total += len(b.Net.FlowTable(r))
	}
	if total < 50 {
		t.Errorf("installed entries = %d, want at least the configured 50", total)
	}
}
