// Package stanford replicates the paper's §6.7 setup: the Stanford
// backbone network from ATPG — 14 Operational Zone (OZ) routers and 2
// backbone routers in a tree-like topology, configured with a large
// number of forwarding entries and ACL rules — plus the "Forwarding
// Error" scenario (a misconfigured entry on S2 drops packets to H2's
// subnet 172.20.10.32/27), 20 additional injected faults, and heavy mixed
// background traffic.
//
// Entry counts are parameterized: the defaults are scaled down for unit
// tests; the benchmark harness raises them toward the paper's 757,000
// forwarding entries and 1,500 ACLs.
package stanford

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/sdn"
	"repro/internal/trace"
)

// Config parameterizes the generated network.
type Config struct {
	Seed int64
	// ForwardingEntries is the number of generated forwarding entries
	// (paper: 757,000).
	ForwardingEntries int
	// ACLRules is the number of generated drop rules (paper: 1,500).
	ACLRules int
	// ExtraFaults is the number of additional injected faulty rules
	// (paper: 20 — half on the H1-H2 path, half elsewhere).
	ExtraFaults int
	// BackgroundPackets is the volume of mixed background traffic
	// injected before and after the diagnostic flows.
	BackgroundPackets int
	// Protocols is the number of distinct protocol types in the
	// background mix (paper: tshark detected 69).
	Protocols int
}

func (c *Config) defaults() {
	if c.ForwardingEntries == 0 {
		c.ForwardingEntries = 2000
	}
	if c.ACLRules == 0 {
		c.ACLRules = 100
	}
	if c.ExtraFaults == 0 {
		c.ExtraFaults = 20
	}
	if c.BackgroundPackets == 0 {
		c.BackgroundPackets = 300
	}
	if c.Protocols == 0 {
		c.Protocols = 69
	}
}

// The scenario's fixed points, following the paper's description.
var (
	// H2Subnet is the victim subnet whose traffic the faulty entry drops.
	H2Subnet = ndlog.MustParsePrefix("172.20.10.32/27")
	// RefSubnet is the co-located subnet used as the reference: "we
	// noticed that the subnets 172.19.254.0/24 and 172.20.10.32/27 are
	// co-located in S2's operational zone, yet H1 is only able to reach
	// the former."
	RefSubnet = ndlog.MustParsePrefix("172.19.254.0/24")
	// H1IP is the client behind S1 (OZ router 1).
	H1IP = ndlog.MustParseIP("171.64.1.10")
)

// Backbone is the generated network plus the scenario's endpoints.
type Backbone struct {
	Net *sdn.Network
	cfg Config

	// S1 and S2 are the OZ routers of the forwarding-error scenario.
	S1, S2 string
	// Zone2Hosts is the delivery node of S2's operational zone (both
	// H2Subnet and RefSubnet live behind it).
	Zone2Hosts string
	// DropNode is where S2's faulty rule sends (drops) traffic.
	DropNode string
	// FaultEntry is the misconfigured entry the diagnosis must find.
	FaultEntry ndlog.Tuple
	// BadHeader and GoodHeader are the diagnostic and reference packets.
	BadHeader, GoodHeader sdn.Header
}

// OZRouters lists the 14 OZ router names.
func OZRouters() []string {
	out := make([]string, 14)
	for i := range out {
		out[i] = fmt.Sprintf("ozrtr%d", i+1)
	}
	return out
}

// BackboneRouters lists the two backbone routers.
func BackboneRouters() []string { return []string{"bbra", "bbrb"} }

// Build generates the network, installs the configured rules and faults,
// and replays the background traffic plus the two diagnostic flows.
func Build(cfg Config) (*Backbone, error) {
	cfg.defaults()
	n := sdn.NewNetwork()
	b := &Backbone{
		Net:        n,
		cfg:        cfg,
		S1:         "ozrtr1",
		S2:         "ozrtr2",
		Zone2Hosts: "oz2-hosts",
		DropNode:   "drop-ozrtr2",
	}
	rng := newRand(cfg.Seed)

	ozs := OZRouters()
	bbs := BackboneRouters()
	for _, r := range append(append([]string{}, ozs...), bbs...) {
		if err := n.SwitchUp(r); err != nil {
			return nil, err
		}
	}
	// Tree-like topology: every OZ router connects to both backbones.
	for _, oz := range ozs {
		for _, bb := range bbs {
			if err := n.AddLink(oz, bb); err != nil {
				return nil, err
			}
			if err := n.AddLink(bb, oz); err != nil {
				return nil, err
			}
		}
	}

	// The H1 -> H2 path: H1 at ozrtr1, H2's zone behind ozrtr2 via bbra.
	// The scenario routers carry parsed router configurations, as the
	// paper's setup loads the real Stanford configs: the entries on the
	// path are derived from configLine tuples, giving them the deep
	// provenance of the paper's trees.
	add := func(sw string, prio int64, src, dst ndlog.Prefix, nxt string) error {
		return n.AddStaticEntry(sw, prio, src, dst, nxt)
	}
	cfgFile := func(sw string) ndlog.ID {
		return ndlog.ID(ndlog.Hash64(ndlog.Str("config:" + sw)))
	}
	cfgLine := func(sw string, prio int64, src, dst ndlog.Prefix, nxt string) error {
		return n.AddConfigLine(sw, cfgFile(sw), prio, src, dst, nxt)
	}
	for _, sw := range []string{b.S1, "bbra", b.S2} {
		if err := n.LoadConfigFile(sw, cfgFile(sw)); err != nil {
			return nil, err
		}
	}
	zone2 := ndlog.MustParsePrefix("172.16.0.0/12")
	if err := cfgLine(b.S1, 5, sdn.Any, zone2, "bbra"); err != nil {
		return nil, err
	}
	if err := cfgLine("bbra", 5, sdn.Any, zone2, b.S2); err != nil {
		return nil, err
	}
	// S2's legitimate zone routes: both subnets delivered locally.
	if err := cfgLine(b.S2, 5, sdn.Any, H2Subnet, b.Zone2Hosts); err != nil {
		return nil, err
	}
	if err := cfgLine(b.S2, 5, sdn.Any, RefSubnet, b.Zone2Hosts); err != nil {
		return nil, err
	}

	// The Forwarding Error: a higher-priority line in S2's config drops
	// H2's subnet.
	b.FaultEntry = ndlog.NewTuple("configLine", cfgFile(b.S2), ndlog.Int(9), sdn.Any, H2Subnet, ndlog.Str(b.DropNode))
	if err := cfgLine(b.S2, 9, sdn.Any, H2Subnet, b.DropNode); err != nil {
		return nil, err
	}

	// Generated forwarding state: prefixes in 10.0.0.0/8 (disjoint from
	// the scenario subnets) spread across all routers, plus per-router
	// defaults toward the backbone.
	routers := append(append([]string{}, ozs...), bbs...)
	for _, oz := range ozs {
		if err := add(oz, 1, sdn.Any, sdn.Any, "bbra"); err != nil {
			return nil, err
		}
	}
	for _, bb := range bbs {
		if err := add(bb, 1, sdn.Any, sdn.Any, "internet"); err != nil {
			return nil, err
		}
	}
	// Generated routes follow the campus hierarchy so forwarding stays
	// loop-free: OZ entries send up to a backbone or deliver into the
	// local zone; backbone entries deliver into a zone or out to the
	// internet.
	for i := 0; i < cfg.ForwardingEntries; i++ {
		sw := routers[int(rng.next()%uint64(len(routers)))]
		pfx := ndlog.Prefix{
			Addr: (ndlog.IP(0x0a000000) | ndlog.IP(rng.next()&0x00ffffff)).Mask(24),
			Bits: 24,
		}
		var nxt string
		isBackbone := sw == "bbra" || sw == "bbrb"
		switch {
		case isBackbone && rng.next()%4 == 0:
			nxt = "internet"
		case isBackbone:
			nxt = "zone-" + ozs[int(rng.next()%uint64(len(ozs)))]
		case rng.next()%2 == 0:
			nxt = bbs[int(rng.next()%uint64(len(bbs)))]
		default:
			nxt = "zone-" + sw
		}
		if err := add(sw, 2+int64(rng.next()%3), sdn.Any, pfx, nxt); err != nil {
			return nil, err
		}
	}
	// ACL rules: drop specific source ranges.
	for i := 0; i < cfg.ACLRules; i++ {
		sw := routers[int(rng.next()%uint64(len(routers)))]
		src := ndlog.Prefix{
			Addr: (ndlog.IP(0xc0000000) | ndlog.IP(rng.next()&0x00ffffff)).Mask(24),
			Bits: 24,
		}
		if err := add(sw, 7, src, sdn.Any, "drop-"+sw); err != nil {
			return nil, err
		}
	}
	// Injected extra faults: half on the H1-H2 path, half elsewhere,
	// none of them matching the two diagnostic flows (the paper verified
	// "the original fault remained reproducible").
	onPath := []string{b.S1, "bbra", b.S2}
	for i := 0; i < cfg.ExtraFaults; i++ {
		var sw string
		if i < cfg.ExtraFaults/2 {
			sw = onPath[i%len(onPath)]
		} else {
			sw = ozs[3+int(rng.next()%uint64(len(ozs)-3))]
		}
		pfx := ndlog.Prefix{
			Addr: (ndlog.IP(0x0a000000) | ndlog.IP(rng.next()&0x00ffffff)).Mask(26),
			Bits: 26,
		}
		if err := add(sw, 8, sdn.Any, pfx, "drop-"+sw); err != nil {
			return nil, err
		}
	}

	// Background traffic: HTTP fetches, a bulk download, an NFS crawl,
	// and a replayed synthetic capture — a realistic protocol mix.
	protos := make([]trace.ProtoMix, 0, cfg.Protocols)
	protos = append(protos, trace.ProtoMix{Proto: 6, Weight: 60}, trace.ProtoMix{Proto: 17, Weight: 20})
	for p := int64(1); len(protos) < cfg.Protocols; p++ {
		if p == 6 || p == 17 {
			continue
		}
		protos = append(protos, trace.ProtoMix{Proto: p, Weight: 1})
	}
	gen := trace.New(trace.Config{
		Seed:       cfg.Seed + 1,
		SrcSubnets: []ndlog.Prefix{ndlog.MustParsePrefix("171.64.0.0/14"), ndlog.MustParsePrefix("10.0.0.0/8")},
		DstSubnets: []ndlog.Prefix{ndlog.MustParsePrefix("10.0.0.0/8")},
		Protocols:  protos,
	})
	injectBackground := func(count int) error {
		for i := 0; i < count; i++ {
			p := gen.Next()
			ingress := ozs[int(rng.next()%uint64(len(ozs)))]
			h := sdn.Header{Src: p.Src, Dst: p.Dst, Proto: p.Proto}
			if _, err := n.InjectPacket(ingress, h); err != nil {
				return err
			}
		}
		return nil
	}
	if err := injectBackground(cfg.BackgroundPackets / 2); err != nil {
		return nil, err
	}

	// The diagnostic flows.
	b.GoodHeader = sdn.Header{Src: H1IP, Dst: RefSubnet.Addr | 7, Proto: 6}
	b.BadHeader = sdn.Header{Src: H1IP, Dst: H2Subnet.Addr | 1, Proto: 6}
	if _, err := n.InjectPacket(b.S1, b.GoodHeader); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket(b.S1, b.BadHeader); err != nil {
		return nil, err
	}

	if err := injectBackground(cfg.BackgroundPackets / 2); err != nil {
		return nil, err
	}
	if err := n.Run(); err != nil {
		return nil, err
	}
	return b, nil
}

// Trees returns the provenance trees of the reference arrival and the
// drop of the bad packet.
func (b *Backbone) Trees() (good, bad *provenance.Tree, err error) {
	good, err = b.Net.ArrivalTree(b.Zone2Hosts, b.GoodHeader)
	if err != nil {
		return nil, nil, err
	}
	bad, err = b.Net.ArrivalTree(b.DropNode, b.BadHeader)
	if err != nil {
		return nil, nil, err
	}
	return good, bad, nil
}

// Diagnose runs DiffProv on the forwarding error.
func (b *Backbone) Diagnose() (*core.Result, error) {
	good, bad, err := b.Trees()
	if err != nil {
		return nil, err
	}
	world, err := core.NewWorld(b.Net.Session())
	if err != nil {
		return nil, err
	}
	return core.Diagnose(context.Background(), good, bad, world, core.Options{})
}

// IsFaultChange reports whether a change is the deletion of the
// misconfigured entry.
func (b *Backbone) IsFaultChange(c replay.Change) bool {
	return !c.Insert && c.Node == b.S2 && c.Tuple.Equal(b.FaultEntry)
}

// rand is a SplitMix64 generator (shared shape with package trace but
// kept private to each package for independence).
type randState struct{ s uint64 }

func newRand(seed int64) *randState {
	return &randState{s: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (r *randState) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
