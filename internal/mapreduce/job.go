package mapreduce

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// Job describes one imperative WordCount run: the paper's instrumented
// Hadoop. The pipeline is plain Go code; its only connection to the
// provenance system is the stream of reported dependencies.
type Job struct {
	ID         string
	Input      *InputFile
	NumMappers int
	Config     map[string]ndlog.Value
	Mapper     ndlog.ID
	// RecomputeChecksums disables the checksum cache: the input file's
	// checksum is recomputed for every record, as in the paper's
	// unoptimized prototype ("the dominating cost was getting the
	// checksums of the data files in HDFS", §6.4). Used by the latency
	// experiment.
	RecomputeChecksums bool
	// DisableProvenance turns off all dependency reporting: the job
	// computes its outputs but records nothing. The latency experiment
	// uses this as the "logging disabled" baseline.
	DisableProvenance bool
}

// NewJob creates a job with the default configuration.
func NewJob(id string, input *InputFile, numMappers int, reduces int64, mapper ndlog.ID) *Job {
	return &Job{
		ID:         id,
		Input:      input,
		NumMappers: numMappers,
		Config:     DefaultConfig(reduces),
		Mapper:     mapper,
	}
}

func (j *Job) clone() *Job {
	cfg := make(map[string]ndlog.Value, len(j.Config))
	for k, v := range j.Config {
		cfg[k] = v
	}
	return &Job{ID: j.ID, Input: j.Input, NumMappers: j.NumMappers, Config: cfg, Mapper: j.Mapper, RecomputeChecksums: j.RecomputeChecksums}
}

// Execution is a completed imperative run: its outputs, its reported
// provenance graph, and the temporal store backing World queries.
type Execution struct {
	job     *Job
	builder *provenance.Builder
	store   *store
	tick    int64
	// Counts maps reducer -> word -> count.
	Counts map[string]map[string]int64
	// countAt locates the final wordcount tuple per word.
	countAt map[string]ndlog.At
}

// Run executes the job, reporting provenance as it goes.
func (j *Job) Run() (*Execution, error) {
	ex := &Execution{
		job:     j,
		builder: provenance.NewBuilder(Program()),
		store:   newStore(Program()),
		Counts:  map[string]map[string]int64{},
		countAt: map[string]ndlog.At{},
	}
	if j.NumMappers < 1 {
		return nil, fmt.Errorf("mapreduce: job %s has no mappers", j.ID)
	}

	// Phase 0: configuration and code are loaded; every entry is
	// reported (the paper: "235 configuration entries").
	cfgAts := map[string]ndlog.At{}
	keys := make([]string, 0, len(j.Config))
	for k := range j.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		at, err := ex.insertBase("master", ndlog.NewTuple("jobConfig", ndlog.Str(k), j.Config[k]))
		if err != nil {
			return nil, err
		}
		cfgAts[k] = at
	}
	codeAt, err := ex.insertBase("master", ndlog.NewTuple("mapperCode", ndlog.Str(MapperSlot), j.Mapper))
	if err != nil {
		return nil, err
	}
	reducesVal, ok := j.Config[ConfigReduces].(ndlog.Int)
	if !ok || reducesVal <= 0 {
		return nil, fmt.Errorf("mapreduce: job %s: bad %s", j.ID, ConfigReduces)
	}
	reducesAt := cfgAts[ConfigReduces]

	// Phases 1-2: map and shuffle, record by record.
	type group struct {
		contribs []ndlog.At
	}
	groups := map[string]*group{} // reducer|word
	var groupOrder []string
	fileID := j.Input.Checksum()
	for lineNo, words := range j.Input.Lines {
		mapperIdx := lineNo % j.NumMappers
		mapper := MapperName(mapperIdx)
		for pos, w := range words {
			if j.RecomputeChecksums {
				fileID = j.Input.Checksum()
			}
			rec := ndlog.NewTuple("inputRecord",
				ndlog.Str(j.ID), fileID, ndlog.Int(int64(lineNo)), ndlog.Int(int64(pos)), ndlog.Str(w))
			recAt, err := ex.insertBase(mapper, rec)
			if err != nil {
				return nil, err
			}
			// The mapper runs. Its internals are opaque; only the
			// emitted pairs and their dependencies are reported.
			if !MapperEmits(j.Mapper, int64(pos)) {
				continue
			}
			kvT := ndlog.NewTuple("kv", ndlog.Str(j.ID), ndlog.Str(w), ndlog.Int(int64(lineNo)), ndlog.Int(int64(pos)))
			kvAtRec, err := ex.derive("m1", mapper, kvT, []ndlog.At{recAt, codeAt}, 0)
			if err != nil {
				return nil, err
			}
			// Shuffle: the hash partitioner.
			r := ReducerName(int64(ndlog.Hash64(ndlog.Str(w)) % uint64(reducesVal)))
			kvAtT := ndlog.NewTuple("kvAt", ndlog.Str(j.ID), ndlog.Str(w), ndlog.Int(int64(lineNo)), ndlog.Int(int64(pos)))
			shAt, err := ex.derive("s1", r, kvAtT, []ndlog.At{kvAtRec, reducesAt}, 0)
			if err != nil {
				return nil, err
			}
			gk := r + "|" + w
			g := groups[gk]
			if g == nil {
				g = &group{}
				groups[gk] = g
				groupOrder = append(groupOrder, gk)
			}
			g.contribs = append(g.contribs, shAt)
		}
	}

	// Phase 3: reduce. The final count of each group is derived from all
	// of its contributing pairs.
	sort.Strings(groupOrder)
	for _, gk := range groupOrder {
		g := groups[gk]
		sep := 0
		for i := range gk {
			if gk[i] == '|' {
				sep = i
				break
			}
		}
		reducer, word := gk[:sep], gk[sep+1:]
		count := int64(len(g.contribs))
		wc := ndlog.NewTuple("wordcount", ndlog.Str(j.ID), ndlog.Str(word), ndlog.Int(count))
		at, err := ex.derive("r1", reducer, wc, g.contribs, len(g.contribs)-1)
		if err != nil {
			return nil, err
		}
		if ex.Counts[reducer] == nil {
			ex.Counts[reducer] = map[string]int64{}
		}
		ex.Counts[reducer][word] = count
		ex.countAt[word] = at
	}
	return ex, nil
}

func (ex *Execution) insertBase(node string, t ndlog.Tuple) (ndlog.At, error) {
	ex.tick++
	if ex.job.DisableProvenance {
		return ndlog.At{Node: node, Tuple: t, Stamp: ndlog.Stamp{T: ex.tick}}, nil
	}
	at, err := ex.builder.Insert(node, t, ex.tick)
	if err != nil {
		return ndlog.At{}, err
	}
	ex.store.insert(node, t, ex.tick)
	return at, nil
}

func (ex *Execution) derive(rule, node string, t ndlog.Tuple, body []ndlog.At, trigger int) (ndlog.At, error) {
	ex.tick++
	if ex.job.DisableProvenance {
		return ndlog.At{Node: node, Tuple: t, Stamp: ndlog.Stamp{T: ex.tick}}, nil
	}
	at, err := ex.builder.Derive(rule, node, t, ex.tick, body, trigger)
	if err != nil {
		return ndlog.At{}, err
	}
	ex.store.insert(node, t, ex.tick)
	return at, nil
}

// CountTree returns the provenance tree of the final count for a word.
func (ex *Execution) CountTree(word string) (*provenance.Tree, error) {
	at, ok := ex.countAt[word]
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %s produced no count for %q", ex.job.ID, word)
	}
	g := ex.builder.Graph()
	ap := g.LastAppear(at.Node, at.Tuple)
	if ap == nil {
		return nil, fmt.Errorf("mapreduce: no provenance for %s", at.Tuple)
	}
	return g.Tree(ap.ID), nil
}

// CountAt returns where the final count of a word lives.
func (ex *Execution) CountAt(word string) (ndlog.At, bool) {
	at, ok := ex.countAt[word]
	return at, ok
}

// World wraps the execution for DiffProv: replaying with changes means
// re-running the instrumented job with the configuration, code, or input
// overrides implied by the changes.
func (ex *Execution) World() core.World { return &mrWorld{ex: ex} }
