package mapreduce

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

const corpus = `the quick brown fox jumps over the lazy dog
the dog barks at the quick fox
a lazy afternoon with the brown dog
`

func testFile() *InputFile { return ParseInput("corpus.txt", corpus) }

func TestParseInput(t *testing.T) {
	f := testFile()
	if len(f.Lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(f.Lines))
	}
	if f.Words() != 23 {
		t.Errorf("words = %d, want 23", f.Words())
	}
	want := f.ExpectedCounts()
	if want["the"] != 5 {
		t.Errorf("count(the) = %d, want 5", want["the"])
	}
	if want["dog"] != 3 {
		t.Errorf("count(dog) = %d, want 3", want["dog"])
	}
	if len(f.Vocabulary()) != len(want) {
		t.Error("vocabulary size mismatch")
	}
	if f.Checksum() == ParseInput("other.txt", corpus).Checksum() {
		t.Error("checksum must depend on the file name")
	}
	if f.Checksum() == ParseInput("corpus.txt", corpus+"extra words").Checksum() {
		t.Error("checksum must depend on the content")
	}
}

func TestMapperBehaviors(t *testing.T) {
	if !MapperEmits(GoodMapper, 0) {
		t.Error("the good mapper emits everything")
	}
	if MapperEmits(BuggyMapper, 0) {
		t.Error("the buggy mapper drops position 0")
	}
	if !MapperEmits(BuggyMapper, 1) {
		t.Error("the buggy mapper keeps later positions")
	}
	if !MapperEmits(ndlog.ID(12345), 0) {
		t.Error("unknown versions default to emitting")
	}
	if GoodMapper == BuggyMapper {
		t.Error("versions must have distinct checksums")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(4)
	if len(cfg) != 235 {
		t.Fatalf("config entries = %d, want 235 (as instrumented in the paper)", len(cfg))
	}
	if cfg[ConfigReduces] != ndlog.Int(4) {
		t.Error("reduces must be set")
	}
}

// checkCounts verifies that per-reducer counts match the expectation.
func checkCounts(t *testing.T, got map[string]map[string]int64, want map[string]int, label string) {
	t.Helper()
	total := map[string]int64{}
	for _, m := range got {
		for w, c := range m {
			total[w] += c
		}
	}
	for w, c := range want {
		if total[w] != int64(c) {
			t.Errorf("%s: count(%s) = %d, want %d", label, w, total[w], c)
		}
	}
}

func TestDeclarativeWordCount(t *testing.T) {
	c, err := NewCluster(2, 4, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunJob("job1", testFile()); err != nil {
		t.Fatal(err)
	}
	checkCounts(t, c.Counts("job1"), testFile().ExpectedCounts(), "declarative")
	// Partitioning: each word lives on exactly one reducer.
	seen := map[string]string{}
	for r, m := range c.Counts("job1") {
		for w := range m {
			if prev, dup := seen[w]; dup && prev != r {
				t.Errorf("word %q on two reducers: %s and %s", w, prev, r)
			}
			seen[w] = r
		}
	}
}

func TestImperativeWordCount(t *testing.T) {
	ex, err := NewJob("job1", testFile(), 2, 4, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, ex.Counts, testFile().ExpectedCounts(), "imperative")
}

func TestImperativeMatchesDeclarative(t *testing.T) {
	c, err := NewCluster(2, 4, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunJob("j", testFile()); err != nil {
		t.Fatal(err)
	}
	ex, err := NewJob("j", testFile(), 2, 4, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	dc := map[string]int64{}
	for _, m := range c.Counts("j") {
		for w, n := range m {
			dc[w] += n
		}
	}
	ic := map[string]int64{}
	for _, m := range ex.Counts {
		for w, n := range m {
			ic[w] += n
		}
	}
	if len(dc) != len(ic) {
		t.Fatalf("vocabulary differs: %d vs %d", len(dc), len(ic))
	}
	for w, n := range dc {
		if ic[w] != n {
			t.Errorf("count(%s): declarative %d vs imperative %d", w, n, ic[w])
		}
	}
}

func TestBuggyMapperDropsFirstWords(t *testing.T) {
	ex, err := NewJob("j", testFile(), 2, 4, BuggyMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]int64{}
	for _, m := range ex.Counts {
		for w, c := range m {
			total[w] += c
		}
	}
	// "the" begins lines 1 and 2: two occurrences dropped.
	if total["the"] != 3 {
		t.Errorf("count(the) = %d, want 3 under the buggy mapper", total["the"])
	}
	// "a" begins line 3 and only occurs there: absent entirely.
	if _, ok := total["a"]; ok {
		t.Error("count(a) should vanish under the buggy mapper")
	}
}

func TestDeclarativeTreeShape(t *testing.T) {
	c, err := NewCluster(2, 4, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunJob("j", testFile()); err != nil {
		t.Fatal(err)
	}
	tree, err := c.CountTree("j", "the")
	if err != nil {
		t.Fatal(err)
	}
	// 5 contributors, each with map + shuffle + inputs: a deep tree.
	if tree.Size() < 60 {
		t.Errorf("tree size = %d, want >= 60 (paper MR-D trees have ~1000)", tree.Size())
	}
	seed, err := tree.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	if seed.Vertex.Tuple.Table != "inputRecord" {
		t.Errorf("seed = %s, want an input record", seed.Vertex.Tuple)
	}
	// The tree mentions the config and the mapper code.
	var sawCfg, sawCode bool
	tree.Walk(func(n *provenance.Tree) {
		switch n.Vertex.Tuple.Table {
		case "jobConfig":
			sawCfg = true
		case "mapperCode":
			sawCode = true
		}
	})
	if !sawCfg || !sawCode {
		t.Errorf("tree must include config (%v) and code (%v)", sawCfg, sawCode)
	}
}

// diagnoseDeclarative runs DiffProv over two declarative jobs.
func diagnoseDeclarative(t *testing.T, good, bad *Cluster, word string) (*core.Result, error) {
	t.Helper()
	gt, err := good.CountTree("goodjob", word)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bad.CountTree("badjob", word)
	if err != nil {
		t.Fatal(err)
	}
	world, err := core.NewWorld(bad.Session())
	if err != nil {
		t.Fatal(err)
	}
	return core.Diagnose(context.Background(), gt, bt, world, core.Options{})
}

func TestDiffProvMR1Declarative(t *testing.T) {
	// Config change: the reducer count silently changed from 4 to 2, so
	// words land on different reducers.
	good, err := NewCluster(2, 4, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.RunJob("goodjob", testFile()); err != nil {
		t.Fatal(err)
	}
	bad, err := NewCluster(2, 2, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.RunJob("badjob", testFile()); err != nil {
		t.Fatal(err)
	}
	// Pick a word that actually moved.
	word := ""
	for _, w := range testFile().Vocabulary() {
		gr, _, err1 := good.CountTuple("goodjob", w)
		br, _, err2 := bad.CountTuple("badjob", w)
		if err1 == nil && err2 == nil && gr != br {
			word = w
			break
		}
	}
	if word == "" {
		t.Fatal("no word moved between reducers; adjust the corpus")
	}
	res, err := diagnoseDeclarative(t, good, bad, word)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "jobConfig" || c.Tuple.Args[0] != ndlog.Str(ConfigReduces) {
		t.Fatalf("change = %v, want the %s entry (the paper's MR1 answer)", c, ConfigReduces)
	}
	if c.Tuple.Args[1] != ndlog.Int(4) {
		t.Fatalf("change = %v, want the good value 4", c)
	}
}

func TestDiffProvMR2Declarative(t *testing.T) {
	// Code change: the new mapper omits the first word of each line.
	good, err := NewCluster(2, 4, GoodMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.RunJob("goodjob", testFile()); err != nil {
		t.Fatal(err)
	}
	bad, err := NewCluster(2, 4, BuggyMapper)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.RunJob("badjob", testFile()); err != nil {
		t.Fatal(err)
	}
	res, err := diagnoseDeclarative(t, good, bad, "the")
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "mapperCode" {
		t.Fatalf("change = %v, want the mapper code version (the paper's MR2 answer)", c)
	}
	if c.Tuple.Args[1] != GoodMapper {
		t.Fatalf("change = %v, want the good version checksum", c)
	}
}

func TestDiffProvMR1Imperative(t *testing.T) {
	goodEx, err := NewJob("goodjob", testFile(), 2, 4, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	badEx, err := NewJob("badjob", testFile(), 2, 2, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	word := ""
	for _, w := range testFile().Vocabulary() {
		ga, ok1 := goodEx.CountAt(w)
		ba, ok2 := badEx.CountAt(w)
		if ok1 && ok2 && ga.Node != ba.Node {
			word = w
			break
		}
	}
	if word == "" {
		t.Fatal("no word moved between reducers")
	}
	gt, err := goodEx.CountTree(word)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := badEx.CountTree(word)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Diagnose(context.Background(), gt, bt, badEx.World(), core.Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "jobConfig" || c.Tuple.Args[0] != ndlog.Str(ConfigReduces) {
		t.Fatalf("change = %v, want %s", c, ConfigReduces)
	}
}

func TestDiffProvMR2Imperative(t *testing.T) {
	goodEx, err := NewJob("goodjob", testFile(), 2, 4, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	badEx, err := NewJob("badjob", testFile(), 2, 4, BuggyMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	gt, err := goodEx.CountTree("the")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := badEx.CountTree("the")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Diagnose(context.Background(), gt, bt, badEx.World(), core.Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "mapperCode" || c.Tuple.Args[1] != GoodMapper {
		t.Fatalf("change = %v, want the good mapper version checksum", c)
	}
}

func TestImperativeWorldApplyErrors(t *testing.T) {
	ex, err := NewJob("j", testFile(), 1, 2, GoodMapper).Run()
	if err != nil {
		t.Fatal(err)
	}
	w := ex.World()
	if _, err := w.Apply(context.Background(), nil); err != nil {
		t.Errorf("empty apply should re-run fine: %v", err)
	}
	// Changes to non-overridable tables are rejected.
	badChange := []replay.Change{{Insert: true, Node: "mapper0", Tuple: ndlog.NewTuple("inputRecord",
		ndlog.Str("j"), ndlog.ID(1), ndlog.Int(0), ndlog.Int(0), ndlog.Str("w"))}}
	if _, err := w.Apply(context.Background(), badChange); err == nil {
		t.Error("input records cannot be changed by a job re-run")
	}
	if _, err := w.Apply(context.Background(), []replay.Change{{Insert: false, Node: "mapper0",
		Tuple: ndlog.NewTuple("mapperCode", ndlog.Str(MapperSlot), GoodMapper)}}); err == nil {
		t.Error("removing the mapper must be rejected")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 2, GoodMapper); err == nil {
		t.Error("zero mappers must fail")
	}
	if _, err := NewJob("j", testFile(), 0, 2, GoodMapper).Run(); err == nil {
		t.Error("zero mappers must fail")
	}
	if _, err := NewJob("j", testFile(), 1, 0, GoodMapper).Run(); err == nil {
		t.Error("zero reducers must fail")
	}
	c, _ := NewCluster(1, 2, GoodMapper)
	if _, _, err := c.CountTuple("nojob", "x"); err == nil {
		t.Error("missing job must fail")
	}
}

func TestModelSourceMentionsAllTables(t *testing.T) {
	for _, table := range []string{"inputRecord", "mapperCode", "jobConfig", "kv", "kvAt", "wordcount"} {
		if !strings.Contains(ModelSource, table) {
			t.Errorf("model missing table %s", table)
		}
	}
}
