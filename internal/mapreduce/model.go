// Package mapreduce simulates the paper's Hadoop MapReduce substrate
// (§6.1-6.2): a WordCount job over tokenized input files, with a
// 235-entry job configuration, versioned mapper code identified by
// bytecode checksums, a hash partitioner, and reducers.
//
// Two variants mirror the paper's MR*-D and MR*-I scenarios:
//
//   - Declarative (Cluster): the job runs as NDlog rules on the engine,
//     and provenance is inferred directly from the rules.
//   - Imperative (Job): a plain Go pipeline — the "instrumented Hadoop"
//     — that reports its dependencies to a provenance.Builder at the
//     granularity of individual key-value pairs, input files, bytecode
//     signatures, and configuration entries (§5).
package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ndlog"
)

// ModelSource is the declarative WordCount model shared by both variants
// (the imperative variant uses it as the external specification its
// reported derivations refer to).
const ModelSource = `
// External inputs.
table inputRecord/5 event base;     // (job, fileID, line, pos, word), at a mapper
table mapperCode/2 base mutable key(0);   // (slot, version-checksum), at the master (the job jar)
table jobConfig/2 base mutable key(0);    // (key, value), at the master

// Dataflow.
table kv/4 event;                   // (job, word, line, pos), at a mapper
table kvAt/4 event;                 // (job, word, line, pos), at a reducer
table wordcount/3;                  // (job, word, count), at a reducer

// Map: apply the (versioned) mapper to each input record. Whether the
// mapper emits a record is part of the code version's behaviour, modeled
// by the mapperEmits builtin over the version checksum.
rule m1 kv(@M, J, W, L, P) :-
    inputRecord(@M, J, F, L, P, W),
    mapperCode(@master, S, V),
    mapperEmits(V, P).

// Shuffle: route each pair to the reducer chosen by the partitioner,
// hash(word) mod mapreduce.job.reduces.
rule s1 kvAt(@R, J, W, L, P) :-
    kv(@M, J, W, L, P),
    jobConfig(@master, "mapreduce.job.reduces", N),
    R := reducer(hashmod(W, N)).

// Reduce: count occurrences per (job, word) group.
rule r1 wordcount(@R, J, W, C) :-
    kvAt(@R, J, W, L, P),
    C := count().
`

// ConfigReduces is the configuration key controlling the number of
// reducers — the root cause of the MR1 scenarios.
const ConfigReduces = "mapreduce.job.reduces"

// MapperSlot is the key under which the active mapper version is stored.
const MapperSlot = "wordcount-mapper"

// Program parses the MapReduce model.
func Program() *ndlog.Program { return ndlog.MustParse(ModelSource) }

// ReducerName returns the node name of reducer i.
func ReducerName(i int64) string { return fmt.Sprintf("reducer%d", i) }

// MapperName returns the node name of mapper i.
func MapperName(i int) string { return fmt.Sprintf("mapper%d", i) }

// mapperBehaviors maps a mapper version checksum to its emission
// behaviour: given the word's position in its line, does this version
// emit it? The buggy version of MR2 drops position 0 (the first word of
// each line). This registry is the "external specification" of code the
// provenance system cannot look inside.
var (
	behaviorMu      sync.RWMutex
	mapperBehaviors = map[ndlog.ID]func(pos int64) bool{}
)

// RegisterMapperVersion registers a mapper version's emission behaviour
// and returns its checksum identity.
func RegisterMapperVersion(name string, emits func(pos int64) bool) ndlog.ID {
	id := ndlog.ID(ndlog.Hash64(ndlog.Str("mapper-bytecode:" + name)))
	behaviorMu.Lock()
	mapperBehaviors[id] = emits
	behaviorMu.Unlock()
	return id
}

// MapperEmits reports whether the given mapper version emits the word at
// the given position; unknown versions emit everything.
func MapperEmits(version ndlog.ID, pos int64) bool {
	behaviorMu.RLock()
	f := mapperBehaviors[version]
	behaviorMu.RUnlock()
	if f == nil {
		return true
	}
	return f(pos)
}

// GoodMapper is the correct WordCount mapper: emits every word.
var GoodMapper = RegisterMapperVersion("wordcount-v1", func(int64) bool { return true })

// BuggyMapper is the MR2 fault: a new mapper version that omits the
// first word of each line.
var BuggyMapper = RegisterMapperVersion("wordcount-v2-buggy", func(pos int64) bool { return pos != 0 })

func init() {
	ndlog.RegisterBuiltin("mapperEmits", 2, func(args []ndlog.Value) (ndlog.Value, error) {
		v, ok1 := args[0].(ndlog.ID)
		p, ok2 := args[1].(ndlog.Int)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("mapreduce: mapperEmits(version, pos), got %s, %s", args[0].Kind(), args[1].Kind())
		}
		return ndlog.Bool(MapperEmits(v, int64(p))), nil
	})
	ndlog.RegisterBuiltin("reducer", 1, func(args []ndlog.Value) (ndlog.Value, error) {
		i, ok := args[0].(ndlog.Int)
		if !ok {
			return nil, fmt.Errorf("mapreduce: reducer(int), got %s", args[0].Kind())
		}
		return ndlog.Str(ReducerName(int64(i))), nil
	})
	ndlog.SetBuiltinKinds("mapperEmits", ndlog.KindBool, ndlog.KindID, ndlog.KindInt)
	ndlog.SetBuiltinKinds("reducer", ndlog.KindStr, ndlog.KindInt)
}

// InputFile is a tokenized text input ("the RecordReader's output"): each
// line is a sequence of words. Files are identified by a content
// checksum, as the paper's logging engine records them.
type InputFile struct {
	Name  string
	Lines [][]string
}

// ParseInput tokenizes a text corpus into an input file.
func ParseInput(name, text string) *InputFile {
	f := &InputFile{Name: name}
	for _, line := range strings.Split(text, "\n") {
		words := strings.Fields(line)
		if len(words) > 0 {
			f.Lines = append(f.Lines, words)
		}
	}
	return f
}

// Checksum returns the file's content identity.
func (f *InputFile) Checksum() ndlog.ID {
	h := ndlog.Hash64(ndlog.Str(f.Name))
	for _, line := range f.Lines {
		h ^= 0x9e3779b97f4a7c15
		h *= 1099511628211
		h ^= ndlog.Hash64(ndlog.Str(strings.Join(line, " ")))
	}
	return ndlog.ID(h)
}

// Words returns the total number of words in the file.
func (f *InputFile) Words() int {
	n := 0
	for _, l := range f.Lines {
		n += len(l)
	}
	return n
}

// ExpectedCounts computes the reference word counts (all words emitted).
func (f *InputFile) ExpectedCounts() map[string]int {
	out := map[string]int{}
	for _, l := range f.Lines {
		for _, w := range l {
			out[w]++
		}
	}
	return out
}

// Vocabulary returns the distinct words, sorted.
func (f *InputFile) Vocabulary() []string {
	seen := map[string]bool{}
	for _, l := range f.Lines {
		for _, w := range l {
			seen[w] = true
		}
	}
	words := make([]string, 0, len(seen))
	for w := range seen {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}

// DefaultConfig generates the simulated Hadoop configuration: 235 entries
// as in the paper's instrumentation, with mapreduce.job.reduces set to
// the given value.
func DefaultConfig(reduces int64) map[string]ndlog.Value {
	cfg := map[string]ndlog.Value{}
	// A representative subset of real Hadoop 2.7.1 keys, padded with
	// generated io/shuffle/yarn tuning knobs to the paper's 235 entries.
	named := []struct {
		key string
		val ndlog.Value
	}{
		{ConfigReduces, ndlog.Int(reduces)},
		{"mapreduce.job.maps", ndlog.Int(2)},
		{"mapreduce.task.io.sort.mb", ndlog.Int(100)},
		{"mapreduce.task.io.sort.factor", ndlog.Int(10)},
		{"mapreduce.map.memory.mb", ndlog.Int(1024)},
		{"mapreduce.reduce.memory.mb", ndlog.Int(1024)},
		{"mapreduce.map.java.opts", ndlog.Str("-Xmx820m")},
		{"mapreduce.reduce.java.opts", ndlog.Str("-Xmx820m")},
		{"mapreduce.reduce.shuffle.parallelcopies", ndlog.Int(5)},
		{"mapreduce.map.sort.spill.percent", ndlog.Str("0.80")},
		{"mapreduce.jobtracker.address", ndlog.Str("local")},
		{"mapreduce.framework.name", ndlog.Str("yarn")},
		{"mapreduce.job.counters.max", ndlog.Int(120)},
		{"mapreduce.input.fileinputformat.split.minsize", ndlog.Int(0)},
		{"mapreduce.output.fileoutputformat.compress", ndlog.Bool(false)},
		{"mapreduce.map.speculative", ndlog.Bool(true)},
		{"mapreduce.reduce.speculative", ndlog.Bool(true)},
		{"mapreduce.job.jvm.numtasks", ndlog.Int(1)},
		{"mapreduce.task.timeout", ndlog.Int(600000)},
		{"mapreduce.client.submit.file.replication", ndlog.Int(10)},
	}
	for _, e := range named {
		cfg[e.key] = e.val
	}
	for i := len(cfg); i < 235; i++ {
		cfg[fmt.Sprintf("mapreduce.generated.tuning.param%03d", i)] = ndlog.Int(int64(i))
	}
	return cfg
}
