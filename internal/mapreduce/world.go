package mapreduce

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// store is the temporal tuple store of an imperative execution, backing
// the World queries that the declarative variant answers from the
// engine's history.
type store struct {
	prog    *ndlog.Program
	entries map[string]map[string][]*storeEntry // node -> table -> entries
	nodes   []string
	keyed   map[string]map[string]*storeEntry // node -> primary key -> open entry
}

type storeEntry struct {
	tuple ndlog.Tuple
	from  int64
	to    int64
	open  bool
}

func newStore(prog *ndlog.Program) *store {
	return &store{
		prog:    prog,
		entries: map[string]map[string][]*storeEntry{},
		keyed:   map[string]map[string]*storeEntry{},
	}
}

func (s *store) insert(node string, t ndlog.Tuple, tick int64) {
	tables, ok := s.entries[node]
	if !ok {
		tables = map[string][]*storeEntry{}
		s.entries[node] = tables
		s.nodes = append(s.nodes, node)
	}
	decl := s.prog.Decl(t.Table)
	e := &storeEntry{tuple: t.Clone(), from: tick, open: true}
	if decl != nil && decl.Event {
		e.open = false
		e.to = tick
	}
	// Keyed replacement mirrors the engine's semantics.
	if decl != nil && len(decl.Key) > 0 {
		pk := t.Table
		for _, i := range decl.Key {
			if i < len(t.Args) {
				pk += "|" + t.Args[i].String()
			}
		}
		if s.keyed[node] == nil {
			s.keyed[node] = map[string]*storeEntry{}
		}
		if old := s.keyed[node][pk]; old != nil && old.open && !old.tuple.Equal(t) {
			old.open = false
			old.to = tick
		}
		s.keyed[node][pk] = e
	}
	tables[t.Table] = append(tables[t.Table], e)
}

func (s *store) exists(node string, t ndlog.Tuple, tick int64) bool {
	for _, e := range s.entries[node][t.Table] {
		if !e.tuple.Equal(t) {
			continue
		}
		if e.from <= tick && (e.open || tick <= e.to) {
			return true
		}
	}
	return false
}

func (s *store) occurredBefore(node string, t ndlog.Tuple, tick int64) bool {
	for _, e := range s.entries[node][t.Table] {
		if e.tuple.Equal(t) && e.from <= tick {
			return true
		}
	}
	return false
}

func (s *store) tuplesAt(node, table string, tick int64) []ndlog.Tuple {
	var out []ndlog.Tuple
	for _, e := range s.entries[node][table] {
		if e.from <= tick && (e.open || tick <= e.to) {
			out = append(out, e.tuple)
		}
	}
	return out
}

// mrWorld adapts an imperative Execution to the DiffProv World: applying
// changes re-runs the instrumented job with the implied overrides.
type mrWorld struct {
	ex *Execution
}

var _ core.World = (*mrWorld)(nil)

func (w *mrWorld) Program() *ndlog.Program  { return w.ex.builder.Spec() }
func (w *mrWorld) Graph() *provenance.Graph { return w.ex.builder.Graph() }

func (w *mrWorld) Exists(node string, t ndlog.Tuple, at ndlog.Stamp) bool {
	return w.ex.store.exists(node, t, at.T)
}

func (w *mrWorld) OccurredBefore(node string, t ndlog.Tuple, tick int64) bool {
	return w.ex.store.occurredBefore(node, t, tick)
}

func (w *mrWorld) FirstOccurrence(node string, t ndlog.Tuple, tick int64) (int64, bool) {
	best, found := int64(0), false
	for _, e := range w.ex.store.entries[node][t.Table] {
		if e.tuple.Equal(t) && e.from <= tick && (!found || e.from < best) {
			best, found = e.from, true
		}
	}
	return best, found
}

func (w *mrWorld) TuplesAt(node, table string, at ndlog.Stamp) []ndlog.Tuple {
	return w.ex.store.tuplesAt(node, table, at.T)
}

// TuplesMatchingAt filters the store's as-of rows; the imperative store
// is small (one job's records), so no index is kept.
func (w *mrWorld) TuplesMatchingAt(node, table string, at ndlog.Stamp, match []ndlog.Match) []ndlog.Tuple {
	var out []ndlog.Tuple
	for _, t := range w.ex.store.tuplesAt(node, table, at.T) {
		if ndlog.MatchTuple(match, t) {
			out = append(out, t)
		}
	}
	return out
}

func (w *mrWorld) Nodes() []string {
	out := append([]string(nil), w.ex.store.nodes...)
	sort.Strings(out)
	return out
}

func (w *mrWorld) IsMutable(node string, t ndlog.Tuple) bool {
	d := w.ex.builder.Spec().Decl(t.Table)
	return d != nil && d.Base && d.Mutable
}

// Apply interprets the counterfactual changes as job overrides and
// re-runs the instrumented pipeline (the paper's MR replays: "once on the
// correct job, another on the faulty job, and a final one to update the
// tree").
func (w *mrWorld) Apply(ctx context.Context, changes []replay.Change) (core.World, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: re-run interrupted: %w", err)
	}
	j := w.ex.job.clone()
	for _, c := range changes {
		switch c.Tuple.Table {
		case "jobConfig":
			key, ok := c.Tuple.Args[0].(ndlog.Str)
			if !ok {
				return nil, fmt.Errorf("mapreduce: bad config change %s", c.Tuple)
			}
			if c.Insert {
				j.Config[string(key)] = c.Tuple.Args[1]
			} else {
				delete(j.Config, string(key))
			}
		case "mapperCode":
			if !c.Insert {
				return nil, fmt.Errorf("mapreduce: cannot remove the mapper (%s)", c.Tuple)
			}
			v, ok := c.Tuple.Args[1].(ndlog.ID)
			if !ok {
				return nil, fmt.Errorf("mapreduce: bad mapper change %s", c.Tuple)
			}
			j.Mapper = v
		default:
			return nil, fmt.Errorf("mapreduce: change to %s is not applicable to a job re-run", c.Tuple.Table)
		}
	}
	ex, err := j.Run()
	if err != nil {
		return nil, err
	}
	return &mrWorld{ex: ex}, nil
}
