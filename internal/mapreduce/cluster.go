package mapreduce

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// Cluster is the declarative MapReduce variant: the WordCount dataflow
// runs as NDlog rules on the engine, with provenance inferred directly
// (the paper's MR1-D / MR2-D re-implementation in RapidNet).
type Cluster struct {
	sess       *replay.Session
	numMappers int
	tick       int64
}

// NewCluster creates a cluster with the given number of mapper nodes,
// the full 235-entry configuration (reduces controls the partitioner),
// and the given active mapper version.
func NewCluster(numMappers int, reduces int64, mapper ndlog.ID) (*Cluster, error) {
	if numMappers < 1 {
		return nil, fmt.Errorf("mapreduce: need at least one mapper")
	}
	c := &Cluster{sess: replay.NewSession(Program()), numMappers: numMappers}
	cfg := DefaultConfig(reduces)
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := ndlog.NewTuple("jobConfig", ndlog.Str(k), cfg[k])
		if err := c.sess.Insert("master", t, c.step()); err != nil {
			return nil, err
		}
	}
	t := ndlog.NewTuple("mapperCode", ndlog.Str(MapperSlot), mapper)
	if err := c.sess.Insert("master", t, c.step()); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) step() int64 {
	c.tick++
	return c.tick
}

// Session exposes the underlying replay session.
func (c *Cluster) Session() *replay.Session { return c.sess }

// SetConfig changes a configuration entry (keyed replacement).
func (c *Cluster) SetConfig(key string, v ndlog.Value) error {
	return c.sess.Insert("master", ndlog.NewTuple("jobConfig", ndlog.Str(key), v), c.step())
}

// SetMapperVersion deploys a new mapper version (the job jar at the
// master; keyed replacement retires the old version).
func (c *Cluster) SetMapperVersion(v ndlog.ID) error {
	t := ndlog.NewTuple("mapperCode", ndlog.Str(MapperSlot), v)
	return c.sess.Insert("master", t, c.step())
}

// RunJob feeds the file's records to the mappers (round-robin by line,
// the split behaviour of the record reader) and processes the job to
// completion. Job submission leaves a small gap after configuration and
// code loading, as in a real cluster where jobs start well after setup.
func (c *Cluster) RunJob(jobID string, f *InputFile) error {
	c.tick += 10
	fileID := f.Checksum()
	for lineNo, words := range f.Lines {
		mapper := MapperName(lineNo % c.numMappers)
		for pos, w := range words {
			rec := ndlog.NewTuple("inputRecord",
				ndlog.Str(jobID), fileID, ndlog.Int(int64(lineNo)), ndlog.Int(int64(pos)), ndlog.Str(w))
			if err := c.sess.Insert(mapper, rec, c.step()); err != nil {
				return err
			}
		}
	}
	return c.sess.Run()
}

// Counts returns the final word counts of a job, per reducer.
func (c *Cluster) Counts(jobID string) map[string]map[string]int64 {
	out := map[string]map[string]int64{}
	e := c.sess.Live()
	for _, node := range e.Nodes() {
		for _, t := range e.LiveTuples(node, "wordcount") {
			if t.Args[0] != ndlog.Str(jobID) {
				continue
			}
			if out[node] == nil {
				out[node] = map[string]int64{}
			}
			out[node][string(t.Args[1].(ndlog.Str))] = int64(t.Args[2].(ndlog.Int))
		}
	}
	return out
}

// CountTuple locates the final wordcount tuple of a word in a job,
// returning the reducer node and the tuple.
func (c *Cluster) CountTuple(jobID, word string) (string, ndlog.Tuple, error) {
	e := c.sess.Live()
	for _, node := range e.Nodes() {
		for _, t := range e.LiveTuples(node, "wordcount") {
			if t.Args[0] == ndlog.Str(jobID) && t.Args[1] == ndlog.Str(word) {
				return node, t, nil
			}
		}
	}
	return "", ndlog.Tuple{}, fmt.Errorf("mapreduce: no wordcount for %q in job %s", word, jobID)
}

// CountTree returns the provenance tree of the final count of a word.
func (c *Cluster) CountTree(jobID, word string) (*provenance.Tree, error) {
	node, tuple, err := c.CountTuple(jobID, word)
	if err != nil {
		return nil, err
	}
	_, g, err := c.sess.Graph()
	if err != nil {
		return nil, err
	}
	ap := g.LastAppear(node, tuple)
	if ap == nil {
		return nil, fmt.Errorf("mapreduce: no provenance for %s at %s", tuple, node)
	}
	return g.Tree(ap.ID), nil
}
