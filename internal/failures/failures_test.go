package failures

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestAllClassesDiagnose(t *testing.T) {
	cases, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("cases = %d, want the three survey classes", len(cases))
	}
	for _, c := range cases {
		t.Run(c.Class.String(), func(t *testing.T) {
			res, err := c.Diagnose()
			if err != nil {
				t.Fatalf("%s: %v", c.Class, err)
			}
			if err := c.Check(res); err != nil {
				t.Fatal(err)
			}
			if len(res.Changes) != 1 {
				t.Fatalf("Δ = %v", res.Changes)
			}
			if res.Changes[0].Tuple.Table != c.WantTable {
				t.Errorf("root cause in table %s, want %s", res.Changes[0].Tuple.Table, c.WantTable)
			}
			t.Logf("%s: %s -> %s", c.Class, c.Description, res.Changes[0])
		})
	}
}

func TestSuddenFailureCascade(t *testing.T) {
	// The sudden case's root cause sits above the packet's missing flow
	// entry: the dead link, reached through the underived entry. Verify
	// the cascade is real.
	c, err := Generate(Sudden)
	if err != nil {
		t.Fatal(err)
	}
	// After the link death, s1 keeps only the fallback entry.
	ft := c.Net.FlowTable("s1")
	if len(ft) != 1 {
		t.Errorf("s1 flow table after the transition = %v, want only the fallback", ft)
	}
}

func TestIntermittentReferenceIsHistoric(t *testing.T) {
	c, err := Generate(Intermittent)
	if err != nil {
		t.Fatal(err)
	}
	gseed, err := c.Good.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	bseed, err := c.Bad.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	if gseed.Vertex.At.T >= bseed.Vertex.At.T {
		t.Error("the reference must predate the bad event (a past up-interval)")
	}
}

func TestGenerateUnknownClass(t *testing.T) {
	if _, err := Generate(Class(42)); err == nil {
		t.Error("unknown class must fail")
	}
	if Class(42).String() == "" {
		t.Error("class rendering")
	}
}

func TestAutoReferenceOnPartialFailure(t *testing.T) {
	// §2.4: "by looking for a different system or service that coexists
	// with the malfunctioning system" — the auto-miner should find the
	// healthy replica's traffic on its own.
	c, err := Generate(Partial)
	if err != nil {
		t.Fatal(err)
	}
	world, err := core.NewWorld(c.Net.Session())
	if err != nil {
		t.Fatal(err)
	}
	res, ref, err := core.AutoDiagnose(context.Background(), c.Bad, world, core.Options{})
	if err != nil {
		t.Fatalf("AutoDiagnose: %v", err)
	}
	if ref == nil || len(res.Changes) != 1 || res.Changes[0].Tuple.Table != "intent" {
		t.Fatalf("mined diagnosis = %v (ref %v)", res.Changes, ref)
	}
}
