// Package failures encodes the paper's failure taxonomy (§2.3-2.4):
// from the Outages-list survey, reference events typically come from
// *partial* failures (some instances of a service work, others do not),
// *sudden* failures (the service worked until some transition), and
// *intermittent* failures (the service flaps). Each class is generated
// here on the SDN substrate together with the natural reference event the
// paper prescribes for it, and diagnosed with DiffProv.
package failures

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/sdn"
)

// Class enumerates the survey's failure classes.
type Class int

// The classes, with the §2.4 survey shares.
const (
	// Partial: the problem appears in some instances of a service but
	// not in others (the survey's most prevalent class). Reference: a
	// working instance observed at the same time.
	Partial Class = iota
	// Sudden: a component stops working after a transition. Reference:
	// the same system observed before the transition.
	Sudden
	// Intermittent: the service flaps. Reference: an occurrence from a
	// working interval.
	Intermittent
)

func (c Class) String() string {
	switch c {
	case Partial:
		return "partial"
	case Sudden:
		return "sudden"
	case Intermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Case is one generated failure with its reference and diagnostic events.
type Case struct {
	Class       Class
	Description string
	Net         *sdn.Network
	Good, Bad   *provenance.Tree
	// WantTable is the table of the expected root-cause change.
	WantTable string
	// Check validates the diagnosis.
	Check func(*core.Result) error
}

// Diagnose runs DiffProv on the case.
func (c *Case) Diagnose() (*core.Result, error) {
	world, err := core.NewWorld(c.Net.Session())
	if err != nil {
		return nil, err
	}
	return core.Diagnose(context.Background(), c.Good, c.Bad, world, core.Options{})
}

var (
	svcIP  = ndlog.MustParseIP("10.0.0.53")
	client = func(i byte) sdn.Header {
		return sdn.Header{Src: ndlog.IP(0x08080000) | ndlog.IP(i), Dst: svcIP, Proto: 17}
	}
)

// Generate builds a failure case of the given class.
func Generate(class Class) (*Case, error) {
	switch class {
	case Partial:
		return partialFailure()
	case Sudden:
		return suddenFailure()
	case Intermittent:
		return intermittentFailure()
	default:
		return nil, fmt.Errorf("failures: unknown class %v", class)
	}
}

// All generates one case per class.
func All() ([]*Case, error) {
	var out []*Case
	for _, c := range []Class{Partial, Sudden, Intermittent} {
		cs, err := Generate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// partialFailure: two anycast service replicas; the intent steering one
// client subnet was fat-fingered, so those clients reach a stale replica
// while everyone else reaches the healthy one (the survey's "a batch of
// DNS servers contained expired entries, while records on other servers
// were up to date" — modeled at the routing layer).
func partialFailure() (*Case, error) {
	n := sdn.NewNetwork()
	steps := []error{
		n.SwitchUp("edge"),
		n.AddPath("replicaGood", "edge", "replicaGood"),
		n.AddPath("replicaStale", "edge", "replicaStale"),
		// The typo: 8.8.8.0/26 was meant to be the whole /24.
		n.AddIntent(10, ndlog.MustParsePrefix("8.8.8.0/26"), sdn.Any, "replicaGood"),
		n.AddIntent(1, sdn.Any, sdn.Any, "replicaStale"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	goodHdr := sdn.Header{Src: ndlog.MustParseIP("8.8.8.10"), Dst: svcIP, Proto: 17} // in /26: healthy
	badHdr := sdn.Header{Src: ndlog.MustParseIP("8.8.8.200"), Dst: svcIP, Proto: 17} // outside /26: stale
	if _, err := n.InjectPacket("edge", goodHdr); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("edge", badHdr); err != nil {
		return nil, err
	}
	if err := n.Run(); err != nil {
		return nil, err
	}
	gt, err := n.ArrivalTree("replicaGood", goodHdr)
	if err != nil {
		return nil, err
	}
	bt, err := n.ArrivalTree("replicaStale", badHdr)
	if err != nil {
		return nil, err
	}
	return &Case{
		Class:       Partial,
		Description: "partial failure: part of a client subnet is steered to a stale replica",
		Net:         n, Good: gt, Bad: bt,
		WantTable: "intent",
		Check: func(r *core.Result) error {
			if len(r.Changes) != 1 {
				return fmt.Errorf("Δ = %v, want 1", r.Changes)
			}
			c := r.Changes[0]
			if c.Tuple.Table != "intent" || !c.Insert {
				return fmt.Errorf("change = %v, want the generalized intent", c)
			}
			return nil
		},
	}, nil
}

// suddenFailure: a link goes down after a network transition (the §1
// example); the entries over it are underived, and traffic falls back to
// a path serving the wrong host. The reference is a packet from before
// the transition (the same system, looking back in time).
func suddenFailure() (*Case, error) {
	n := sdn.NewNetwork()
	steps := []error{
		n.SwitchUp("s1"),
		n.SwitchUp("s2"),
		n.AddPath("service", "s1", "s2", "service"),
		n.AddPath("backup", "s1", "backup"),
		n.AddIntent(10, sdn.Any, sdn.Any, "service"),
		n.AddIntent(1, sdn.Any, sdn.Any, "backup"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	goodHdr := client(1)
	badHdr := client(2)
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		return nil, err
	}
	if err := n.Run(); err != nil {
		return nil, err
	}
	// The transition: the s1-s2 link goes down; the service entry over
	// it is underived.
	n.AdvanceTo(n.Tick() + 20)
	if err := n.Session().Delete(n.Controller(),
		ndlog.NewTuple("link", ndlog.Str("s1"), ndlog.Str("s2")), n.Tick()); err != nil {
		return nil, err
	}
	n.AdvanceTo(n.Tick() + 20)
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		return nil, err
	}
	if err := n.Run(); err != nil {
		return nil, err
	}
	gt, err := n.ArrivalTree("service", goodHdr)
	if err != nil {
		return nil, err
	}
	bt, err := n.ArrivalTree("backup", badHdr)
	if err != nil {
		return nil, err
	}
	return &Case{
		Class:       Sudden,
		Description: "sudden failure: the s1-s2 link went down and traffic fell back to the wrong host",
		Net:         n, Good: gt, Bad: bt,
		WantTable: "link",
		Check: func(r *core.Result) error {
			if len(r.Changes) != 1 {
				return fmt.Errorf("Δ = %v, want 1", r.Changes)
			}
			c := r.Changes[0]
			if c.Tuple.Table != "link" || !c.Insert ||
				c.Tuple.Args[0] != ndlog.Str("s1") || c.Tuple.Args[1] != ndlog.Str("s2") {
				return fmt.Errorf("change = %v, want restoring link(s1, s2)", c)
			}
			return nil
		},
	}, nil
}

// intermittentFailure: a flapping intent — the service route is
// repeatedly withdrawn and restored (the survey's "sometimes succeeded,
// sometimes failed"). The bad event falls in a down interval; the
// reference comes from an up interval.
func intermittentFailure() (*Case, error) {
	n := sdn.NewNetwork()
	steps := []error{
		n.SwitchUp("s1"),
		n.AddPath("service", "s1", "service"),
		n.AddPath("fallback", "s1", "fallback"),
		n.AddIntent(1, sdn.Any, sdn.Any, "fallback"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	flap := func(up bool) error {
		n.AdvanceTo(n.Tick() + 20)
		if up {
			return n.AddIntent(10, sdn.Any, sdn.Any, "service")
		}
		return n.RemoveIntent(10, sdn.Any, sdn.Any, "service")
	}
	var goodHdr, badHdr sdn.Header
	for cycle := 0; cycle < 3; cycle++ {
		if err := flap(true); err != nil {
			return nil, err
		}
		h := client(byte(10 + cycle))
		n.AdvanceTo(n.Tick() + 5)
		if _, err := n.InjectPacket("s1", h); err != nil {
			return nil, err
		}
		if cycle == 1 {
			goodHdr = h // a success from an up interval
		}
		if err := n.Run(); err != nil {
			return nil, err
		}
		if err := flap(false); err != nil {
			return nil, err
		}
		h = client(byte(20 + cycle))
		n.AdvanceTo(n.Tick() + 5)
		if _, err := n.InjectPacket("s1", h); err != nil {
			return nil, err
		}
		if cycle == 2 {
			badHdr = h // a failure from the last down interval
		}
		if err := n.Run(); err != nil {
			return nil, err
		}
	}
	gt, err := n.ArrivalTree("service", goodHdr)
	if err != nil {
		return nil, err
	}
	bt, err := n.ArrivalTree("fallback", badHdr)
	if err != nil {
		return nil, err
	}
	return &Case{
		Class:       Intermittent,
		Description: "intermittent failure: a flapping route; the bad request fell in a down interval",
		Net:         n, Good: gt, Bad: bt,
		WantTable: "intent",
		Check: func(r *core.Result) error {
			if len(r.Changes) != 1 {
				return fmt.Errorf("Δ = %v, want 1", r.Changes)
			}
			c := r.Changes[0]
			if c.Tuple.Table != "intent" || !c.Insert || c.Tuple.Args[3] != ndlog.Str("service") {
				return fmt.Errorf("change = %v, want restoring the service intent", c)
			}
			return nil
		},
	}, nil
}
