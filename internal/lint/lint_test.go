package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc type-checks one synthetic file as a package with the given
// import path (which determines which analyzers apply) and filename
// (which appendonly's allowlist keys on).
func loadSrc(t *testing.T, path, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func runOn(t *testing.T, pkg *Package, a *Analyzer) []Diagnostic {
	t.Helper()
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

func wantFindings(t *testing.T, diags []Diagnostic, fragments ...string) {
	t.Helper()
	if len(diags) != len(fragments) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(fragments), diags)
	}
	for i, frag := range fragments {
		if !strings.Contains(diags[i].String(), frag) {
			t.Errorf("finding %d = %q, want fragment %q", i, diags[i], frag)
		}
	}
}

func TestDetNowFlagsWallClock(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`)
	wantFindings(t, runOn(t, pkg, DetNow),
		"x.go:4:16: detnow: time.Now",
		"x.go:5:14: detnow: time.Since")
}

func TestDetNowFlagsMathRand(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/provenance", "x.go", `package provenance
import "math/rand"
func f() int { return rand.Int() }
`)
	wantFindings(t, runOn(t, pkg, DetNow), "x.go:2:8: detnow: import of math/rand")
}

func TestDetNowIgnoresOutOfScopePackages(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/core", "x.go", `package core
import "time"
var now = time.Now
`)
	wantFindings(t, runOn(t, pkg, DetNow))
}

func TestDetNowAllowsOtherTimeUse(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/replay", "x.go", `package replay
import "time"
var d = 3 * time.Second
func f(d time.Duration) string { return d.String() }
`)
	wantFindings(t, runOn(t, pkg, DetNow))
}

func TestMapRangeFlagsUnsortedAccumulation(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	wantFindings(t, runOn(t, pkg, MapRange), "x.go:5:3: maprange: append to out")
}

func TestMapRangeAcceptsSortAfterLoop(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	wantFindings(t, runOn(t, pkg, MapRange))
}

func TestMapRangeSortMustNameTheAccumulator(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
import "sort"
func keys(m map[string]int, other []string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(other)
	return out
}
`)
	wantFindings(t, runOn(t, pkg, MapRange), "maprange: append to out")
}

func TestMapRangeIgnoresLoopLocalAndSliceRanges(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/provenance", "x.go", `package provenance
func f(m map[string][]int, s []string) []string {
	var out []string
	for _, v := range m {
		local := []int{}
		local = append(local, v...) // loop-local: order dies with the loop
		_ = local
	}
	for _, k := range s {
		out = append(out, k) // slice range: order is deterministic
	}
	return out
}
`)
	wantFindings(t, runOn(t, pkg, MapRange))
}

const appendOnlySrc = `package provenance
type Vertex struct{ Children []int }
type Graph struct{ vertexes []*Vertex }
type shard struct{ vertexes []*Vertex } // distinct type: not guarded
func f(g *Graph, v *Vertex, s *shard) {
	g.vertexes = append(g.vertexes, v)
	v.Children[0] = 7
	s.vertexes = nil
}
`

func TestAppendOnlyFlagsWritesOutsideRecorder(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/provenance", "other.go", appendOnlySrc)
	wantFindings(t, runOn(t, pkg, AppendOnly),
		"other.go:6:2: appendonly: write to Graph.vertexes",
		"other.go:7:2: appendonly: write to Vertex.Children")
}

func TestAppendOnlyAllowsRecordingLayerFiles(t *testing.T) {
	// In graph.go both fields may be written; the shard write stays legal.
	pkg := loadSrc(t, "repro/internal/provenance", "graph.go", appendOnlySrc)
	wantFindings(t, runOn(t, pkg, AppendOnly))
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
import "time"
func f() (int64, int64) {
	a := time.Now().UnixNano() //diffprov:allow detnow
	//diffprov:allow detnow
	b := time.Now().UnixNano()
	c := time.Now().UnixNano()
	return a + b, c
}
`)
	wantFindings(t, runOn(t, pkg, DetNow), "x.go:7:12: detnow: time.Now")
}

func TestAllowDirectiveIsPerAnalyzer(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "x.go", `package ndlog
import "time"
func f() int64 {
	return time.Now().UnixNano() //diffprov:allow maprange
}
`)
	wantFindings(t, runOn(t, pkg, DetNow), "detnow: time.Now")
}

// TestRepoIsClean loads the real scope packages and asserts the analyzers
// run clean — the same gate CI applies via cmd/diffprovlint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the tree from source")
	}
	pkgs, err := Load("../..",
		"./internal/ndlog/...", "./internal/provenance", "./internal/replay")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("loaded %d packages, want >= 4", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestLoadRejectsUnknownDir(t *testing.T) {
	if _, err := Load("../..", "./internal/nosuchpkg"); err == nil {
		t.Fatal("want error for missing package dir")
	}
}

const sealCheckSrc = `package ndlog
type Interval struct{ A, B int64 }
type table struct{ hist map[string][]Interval }
type node struct{ tables map[string]*table }
type Engine struct {
	dependents map[string][]int
	aggGroups  map[string]*int
}
func f(e *Engine, n *node, tb *table) {
	tb.hist["k"] = nil
	n.tables["t"] = tb
	e.dependents["r"] = append(e.dependents["r"], 1)
	delete(e.aggGroups, "g")
}
`

func TestSealCheckFlagsWritesOutsideCowLayer(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "other.go", sealCheckSrc)
	wantFindings(t, runOn(t, pkg, SealCheck),
		"other.go:10:2: sealcheck: write to CoW-shared table.hist",
		"other.go:11:2: sealcheck: write to CoW-shared node.tables",
		"other.go:12:2: sealcheck: write to CoW-shared Engine.dependents",
		"other.go:13:9: sealcheck: write to CoW-shared Engine.aggGroups")
}

func TestSealCheckAllowsCowLayerFiles(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/ndlog", "cow.go", sealCheckSrc)
	wantFindings(t, runOn(t, pkg, SealCheck))
}

func TestSealCheckEngineConstructionSitesStayLegal(t *testing.T) {
	// engine.go may create tables and maintain the support index
	// (pre-seal construction), but must not touch table histories or
	// fork aggregate groups.
	pkg := loadSrc(t, "repro/internal/ndlog", "engine.go", sealCheckSrc)
	wantFindings(t, runOn(t, pkg, SealCheck),
		"engine.go:10:2: sealcheck: write to CoW-shared table.hist",
		"engine.go:13:9: sealcheck: write to CoW-shared Engine.aggGroups")
}

func TestSealCheckGuardsGraphIndexes(t *testing.T) {
	pkg := loadSrc(t, "repro/internal/provenance", "distributed.go", `package provenance
type Vertex struct{ ID int }
type Graph struct {
	redirect  map[int]*Vertex
	openExist map[string]int
}
type shard struct{ openExist map[string]int } // distinct type: not guarded
func f(g *Graph, s *shard, v *Vertex) {
	g.redirect[1] = v
	g.openExist["k"] = 2
	s.openExist["k"] = 3
}
`)
	wantFindings(t, runOn(t, pkg, SealCheck),
		"distributed.go:9:2: sealcheck: write to CoW-shared Graph.redirect",
		"distributed.go:10:2: sealcheck: write to CoW-shared Graph.openExist")
}
