// Package lint is a small, dependency-free analogue of golang.org/x/tools'
// go/analysis framework: an Analyzer inspects one type-checked package and
// reports positioned diagnostics through its Pass.
//
// The repo's determinism rests on invariants the compiler cannot check —
// no wall-clock reads inside the engine, no map-iteration order leaking
// into emitted tuples, no provenance-graph mutation outside the recorder.
// The analyzers in this package (see analyzers.go) encode those invariants
// so CI enforces them; cmd/diffprovlint is the driver.
//
// A finding may be suppressed with a directive comment
//
//	//diffprov:allow <analyzer> [<analyzer>...]
//
// placed on the offending line or on the line immediately above it. The
// allowlist is deliberate friction: every directive in the tree is a
// documented exception (doc/analysis.md).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint check.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path. A nil Match applies everywhere.
	Match func(path string) bool
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies each applicable analyzer to each package, drops findings
// suppressed by //diffprov:allow directives, and returns the rest sorted
// by position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if !allow.suppresses(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]bool

// collectAllows gathers //diffprov:allow directives. A directive on line L
// suppresses findings on L (end-of-line form) and on L+1 (preceding-line
// form).
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//diffprov:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, name := range strings.Fields(strings.ReplaceAll(text, ",", " ")) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return set
}

func (s allowSet) suppresses(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// deref strips pointers off a type.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the name of t's (pointer-stripped) named type, or "".
func namedOf(t types.Type) string {
	if n, ok := deref(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
