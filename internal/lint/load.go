package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. "repro/internal/ndlog"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by name
	Pkg   *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matched by the go-style
// patterns ("./...", "./internal/ndlog", ...) relative to the enclosing
// module, which is located by walking up from dir (or the working
// directory if dir is empty) to the nearest go.mod.
//
// It is a self-contained substitute for go/packages: module-internal
// imports are resolved from source within the module, and everything else
// (the standard library) is delegated to the compiler's source importer.
// That keeps cmd/diffprovlint free of external dependencies, at the cost
// of supporting exactly one module with no requirements — which is what
// this repo is.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if dir == "" {
		dir = "."
	}
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   map[string]*Package{},
		active: map[string]bool{},
	}
	dirs, err := expandPatterns(root, dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// expandPatterns resolves go-style package patterns to directories that
// contain at least one non-test .go file.
func expandPatterns(root, base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(p, "/")
			if pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(base, start)
		}
		start, err := filepath.Abs(start)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if !hasGoFiles(start) {
				return nil, fmt.Errorf("lint: no Go files in %s", start)
			}
			add(start)
			continue
		}
		err = filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	_ = root
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loader type-checks module-internal packages from source, memoizing by
// import path, and delegates all other imports to the standard source
// importer sharing the same FileSet.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.ImporterFrom
	pkgs   map[string]*Package
	active map[string]bool // cycle detection
}

func (l *loader) internal(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.internal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := l.root
	if rel, ok := strings.CutPrefix(path, l.module+"/"); ok {
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", path, err)
	}
	var names []string
	for _, e := range ents {
		if isSourceFile(e) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
