package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// All returns the repo's determinism analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetNow, MapRange, AppendOnly, SealCheck}
}

// prefixMatch matches a package path equal to, or nested under, any of
// the given import paths.
func prefixMatch(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, base := range paths {
			if p == base || strings.HasPrefix(p, base+"/") {
				return true
			}
		}
		return false
	}
}

// DetNow forbids wall-clock and PRNG use inside the deterministic core.
//
// Replay correctness (replay.md) hinges on a run being a pure function of
// its inputs: the engine orders work by logical timestamps, and the replay
// layer re-executes prefixes expecting byte-identical provenance. A stray
// time.Now or math/rand call breaks that silently. The only sanctioned
// wall-clock reads are the stats timings in internal/replay's session,
// which never influence tuple derivation; those carry
// //diffprov:allow detnow directives.
var DetNow = &Analyzer{
	Name:  "detnow",
	Doc:   "forbid time.Now/time.Since and math/rand in deterministic packages",
	Match: prefixMatch("repro/internal/ndlog", "repro/internal/provenance", "repro/internal/replay", "repro/internal/store"),
	Run:   runDetNow,
}

func runDetNow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s", path, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(id.Pos(), "time.%s in deterministic package %s (use logical timestamps)",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// MapRange forbids accumulating results while ranging over a map unless
// the accumulator is sorted afterwards in the same function.
//
// Go randomizes map iteration order per run, so a slice built inside
// `for k := range m` carries a nondeterministic order into whatever
// consumes it — in this engine that means provenance trees and diagnoses
// that differ between identical runs. The canonical fix (collect keys,
// sort, then iterate) is recognized: an append is fine if a sort.* call
// naming the same variable appears after the loop.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "forbid unsorted accumulation from map iteration",
	Match: prefixMatch("repro/internal/ndlog", "repro/internal/provenance"),
	Run:   runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for obj, pos := range outerAppends(pass, rs) {
			if !sortedAfter(pass, body, rs.End(), obj) {
				pass.Reportf(pos, "append to %s while ranging over a map without sorting it afterwards (iteration order is random)", obj.Name())
			}
		}
		return true
	})
}

// outerAppends finds `v = append(v, ...)` statements inside the range body
// whose target v is declared outside the range statement.
func outerAppends(pass *Pass, rs *ast.RangeStmt) map[types.Object]token.Pos {
	found := map[types.Object]token.Pos{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
				continue // loop-local accumulator; its order dies with the loop
			}
			if _, dup := found[obj]; !dup {
				found[obj] = id.Pos()
			}
		}
		return true
	})
	return found
}

// sortedAfter reports whether a sort.* call mentioning obj occurs after
// pos within fn.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// AppendOnly confines provenance-graph mutation to the recording layer.
//
// The provenance graph is the system of record for diagnosis: DiffProv's
// guarantees (and the replay layer's checkpoints) assume vertexes are
// appended by the Recorder machinery and never rewritten. This analyzer
// flags writes to Graph.vertexes outside graph.go/fork.go and writes to
// Vertex.Children outside the recording layer (graph.go/recorder.go/
// distributed.go/fork.go, plus persist.go — the shard store decodes
// vertex records back into Children on recovery).
var AppendOnly = &Analyzer{
	Name:  "appendonly",
	Doc:   "confine Graph.vertexes and Vertex.Children writes to the recording layer",
	Match: prefixMatch("repro/internal/provenance"),
	Run:   runAppendOnly,
}

// guardedFields maps (owner type, field) to the base filenames allowed to
// write it.
var guardedFields = map[[2]string][]string{
	{"Graph", "vertexes"}:  {"graph.go", "fork.go"},
	{"Vertex", "Children"}: {"graph.go", "recorder.go", "distributed.go", "fork.go", "persist.go"},
}

func runAppendOnly(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var lhs []ast.Expr
			switch st := n.(type) {
			case *ast.AssignStmt:
				lhs = st.Lhs
			case *ast.IncDecStmt:
				lhs = []ast.Expr{st.X}
			default:
				return true
			}
			for _, e := range lhs {
				checkGuardedWrite(pass, e)
			}
			return true
		})
	}
	return nil
}

func checkGuardedWrite(pass *Pass, e ast.Expr) {
	// v.Children[i] = x mutates the field as surely as v.Children = x.
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel := pass.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	key := [2]string{namedOf(sel.Recv()), sel.Obj().Name()}
	allowed, guarded := guardedFields[key]
	if !guarded {
		return
	}
	file := filepath.Base(pass.Fset.Position(se.Pos()).Filename)
	for _, ok := range allowed {
		if file == ok {
			return
		}
	}
	pass.Reportf(se.Pos(), "write to %s.%s outside the recording layer (allowed: %s)",
		key[0], key[1], strings.Join(allowed, ", "))
}

// SealCheck confines writes to copy-on-write-shared engine and graph
// structures to the CoW layer.
//
// Prefix forks share tables, support indexes, aggregate groups, and
// provenance vertexes between a sealed parent and its children; a write
// that bypasses the cow.go helpers (writableTable, histAppend,
// mutableVertex, ...) mutates state another fork can still observe. The
// compiler cannot see the seal, so this analyzer pins each shared
// structure to the files that implement its discipline: cow.go and
// fork.go always, plus the few pre-seal construction sites (the engine
// creates tables and support indexes while it is still the only owner;
// the recorder appends graph indexes before any fork exists).
var SealCheck = &Analyzer{
	Name:  "sealcheck",
	Doc:   "confine writes to CoW-shared structures to the cow/fork layer",
	Match: prefixMatch("repro/internal/ndlog", "repro/internal/provenance"),
	Run:   runSealCheck,
}

// sealedFields maps (owner type, field) to the base filenames allowed to
// write or delete through it. Composite-literal construction is not a
// selector write and stays unconstrained: building a fresh, unshared
// value is always legal.
var sealedFields = map[[2]string][]string{
	// ndlog: per-table interval history and rows are forked CoW. The
	// counterfactual phase rewrites history through delta.go's helpers
	// (histRemoveOcc, histBackdateFrom, histCloseAt), which follow the
	// same copy-on-first-write discipline as histCloseLast.
	{"table", "hist"}: {"cow.go", "fork.go", "delta.go"},
	// A node's table map is shared until the first write to a table.
	{"node", "tables"}: {"cow.go", "fork.go", "engine.go"},
	// The support index backing provenance invalidation; the engine
	// maintains it pre-seal (indexSupport/unindexSupport).
	{"Engine", "dependents"}: {"cow.go", "fork.go", "engine.go"},
	// Aggregate delta-chain groups fork lazily.
	{"Engine", "aggGroups"}: {"cow.go", "fork.go"},
	// provenance: the CoW overlay itself, and the graph indexes the
	// recorder appends to pre-seal.
	{"Graph", "redirect"}:    {"cow.go"},
	{"Graph", "openExist"}:   {"cow.go", "recorder.go"},
	{"Graph", "byDerive"}:    {"recorder.go"},
	{"Graph", "appearByRef"}: {"recorder.go"},
	{"Graph", "existByRef"}:  {"recorder.go"},
	{"Graph", "headAppear"}:  {"recorder.go"},
}

func runSealCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, e := range st.Lhs {
					checkSealedWrite(pass, e)
				}
			case *ast.IncDecStmt:
				checkSealedWrite(pass, st.X)
			case *ast.CallExpr:
				// delete(s.field, k) mutates the shared map too.
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						checkSealedWrite(pass, st.Args[0])
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkSealedWrite(pass *Pass, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel := pass.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	key := [2]string{namedOf(sel.Recv()), sel.Obj().Name()}
	allowed, sealed := sealedFields[key]
	if !sealed {
		return
	}
	file := filepath.Base(pass.Fset.Position(se.Pos()).Filename)
	for _, ok := range allowed {
		if file == ok {
			return
		}
	}
	pass.Reportf(se.Pos(), "write to CoW-shared %s.%s outside the seal discipline (allowed: %s)",
		key[0], key[1], strings.Join(allowed, ", "))
}
