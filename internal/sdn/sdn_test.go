package sdn

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// figure1 builds the paper's Figure 1 network: packets enter at s1;
// untrusted sources should go via s2-s6 to web1 (co-located with the
// DPI), everything else via s2-s3-s4-s5 to web2. The operator's typo:
// the untrusted subnet 4.3.2.0/23 written as 4.3.2.0/24.
func figure1(t *testing.T, untrusted string) *Network {
	t.Helper()
	n := NewNetwork()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, sw := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		must(n.SwitchUp(sw))
	}
	must(n.AddPath("web1", "s1", "s2", "s6", "web1"))
	must(n.AddPath("web2", "s1", "s2", "s3", "s4", "s5", "web2"))
	must(n.AddIntent(10, ndlog.MustParsePrefix(untrusted), Any, "web1"))
	must(n.AddIntent(1, Any, Any, "web2"))
	must(n.AddMirror("s6", Any, Any, "dpi"))
	must(n.Run())
	return n
}

var (
	webIP    = ndlog.MustParseIP("10.0.0.80")
	goodHdr  = Header{Src: ndlog.MustParseIP("4.3.2.1"), Dst: webIP, Proto: 6}
	badHdr   = Header{Src: ndlog.MustParseIP("4.3.3.1"), Dst: webIP, Proto: 6}
	otherHdr = Header{Src: ndlog.MustParseIP("8.8.8.8"), Dst: webIP, Proto: 6}
)

func TestFigure1Forwarding(t *testing.T) {
	n := figure1(t, "4.3.2.0/24")
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectPacket("s1", otherHdr); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Arrived("web1", goodHdr) {
		t.Error("untrusted 4.3.2.1 must reach web1")
	}
	if !n.Arrived("web2", badHdr) {
		t.Error("4.3.3.1 falls through the typo'd rule and reaches web2")
	}
	if !n.Arrived("web2", otherHdr) {
		t.Error("ordinary traffic reaches web2")
	}
	if !n.Arrived("dpi", goodHdr) {
		t.Error("traffic through s6 must be mirrored to the DPI")
	}
	if n.Arrived("dpi", badHdr) {
		t.Error("misrouted traffic bypasses the DPI — the security hole of §2")
	}
}

func TestFigure1CorrectedPolicy(t *testing.T) {
	n := figure1(t, "4.3.2.0/23")
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Arrived("web1", badHdr) {
		t.Error("with the /23 intent, 4.3.3.1 must reach web1")
	}
}

func TestFlowEntriesAreDerivedFromIntents(t *testing.T) {
	n := figure1(t, "4.3.2.0/24")
	ft := n.FlowTable("s2")
	if len(ft) != 2 {
		t.Fatalf("s2 flow table = %v, want 2 entries", ft)
	}
	// Flow entry provenance reaches back to the intent.
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	tree, err := n.ArrivalTree("web1", goodHdr)
	if err != nil {
		t.Fatal(err)
	}
	sawIntent, sawHop, sawPolicyRoute := false, false, false
	tree.Walk(func(node *provenance.Tree) {
		switch node.Vertex.Tuple.Table {
		case "intent":
			sawIntent = true
		case "hop":
			sawHop = true
		case "policyRoute":
			sawPolicyRoute = true
		}
	})
	if !sawIntent || !sawHop || !sawPolicyRoute {
		t.Errorf("packet provenance should reach the controller state: intent=%v hop=%v policyRoute=%v",
			sawIntent, sawHop, sawPolicyRoute)
	}
}

func TestArrivalTreeSize(t *testing.T) {
	n := figure1(t, "4.3.2.0/24")
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	good, err := n.ArrivalTree("web1", goodHdr)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := n.ArrivalTree("web2", badHdr)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's SDN1 trees have 156 and 201 vertexes; ours must be of
	// the same order (tens to hundreds), with the bad tree larger (it
	// takes the longer path).
	if good.Size() < 40 {
		t.Errorf("good tree size = %d, want a rich tree (>= 40)", good.Size())
	}
	if bad.Size() <= good.Size() {
		t.Errorf("bad tree (%d) should be larger than good (%d): longer path", bad.Size(), good.Size())
	}
}

func TestDiffProvTracesToIntent(t *testing.T) {
	// End-to-end over the derived controller state: the root cause is
	// the typo'd intent at the controller, not the flow entry.
	n := figure1(t, "4.3.2.0/24")
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	good, err := n.ArrivalTree("web1", goodHdr)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := n.ArrivalTree("web2", badHdr)
	if err != nil {
		t.Fatal(err)
	}
	world, err := core.NewWorld(n.Session())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Diagnose(context.Background(), good, bad, world, core.Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "intent" || c.Node != "controller" {
		t.Fatalf("change = %v, want an intent change at the controller", c)
	}
	wantMatch := ndlog.MustParsePrefix("4.3.2.0/23")
	if c.Tuple.Args[1] != wantMatch {
		t.Fatalf("change = %s, want the /23 source match", c.Tuple)
	}
}

func TestStaticEntriesAndPinning(t *testing.T) {
	n := NewNetwork()
	if err := n.AddStaticEntry("s1", 5, Any, Any, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.FlowTable("s1")) != 1 {
		t.Fatal("static entry should appear in the flow table")
	}
	n.PinStaticEntry("s1", 5, Any, Any, "h1")
	st := ndlog.NewTuple("staticEntry", ndlog.Int(5), Any, Any, ndlog.Str("h1"))
	if n.Session().Live().IsMutable("s1", st) {
		t.Error("pinned static entry must be immutable")
	}
	if err := n.RemoveStaticEntry("s1", 5, Any, Any, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.FlowTable("s1")) != 0 {
		t.Error("removed static entry must leave the flow table")
	}
}

func TestRemoveIntentExpiresEntries(t *testing.T) {
	n := NewNetwork()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.SwitchUp("s1"))
	must(n.AddPath("h1", "s1", "h1"))
	must(n.AddIntent(10, Any, Any, "h1"))
	must(n.Run())
	if len(n.FlowTable("s1")) != 1 {
		t.Fatal("intent should install an entry")
	}
	must(n.RemoveIntent(10, Any, Any, "h1"))
	must(n.Run())
	if len(n.FlowTable("s1")) != 0 {
		t.Error("removing the intent must underive the entry")
	}
}

func TestAddPathValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddPath("h", "s1"); err == nil {
		t.Error("single-node path must be rejected")
	}
}

func TestHeaderString(t *testing.T) {
	if goodHdr.String() == "" || goodHdr.Tuple().Table != "packet" {
		t.Error("header accessors broken")
	}
}

func TestArrivalTreeMissingPacket(t *testing.T) {
	n := NewNetwork()
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ArrivalTree("nowhere", goodHdr); err == nil {
		t.Error("missing packet must be an error")
	}
}

func TestNetworkOptions(t *testing.T) {
	n := NewNetwork(WithController("ctl"), WithSessionOptions())
	if n.Controller() != "ctl" {
		t.Errorf("controller = %s", n.Controller())
	}
	if n.Session() == nil {
		t.Fatal("session missing")
	}
	if err := n.SwitchUp("s1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Session().Live().LiveTuples("ctl", "switchUp"); len(got) != 1 {
		t.Errorf("switchUp should land on the custom controller, got %v", got)
	}
}

func TestConfigLineEntries(t *testing.T) {
	n := NewNetwork()
	file := ndlog.ID(42)
	if err := n.AddConfigLine("s1", file, 5, Any, Any, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.FlowTable("s1")) != 0 {
		t.Fatal("config lines are inert until the file is loaded")
	}
	if err := n.LoadConfigFile("s1", file); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.FlowTable("s1")) != 1 {
		t.Fatal("loading the config file must install its entries")
	}
	if err := n.RemoveConfigLine("s1", file, 5, Any, Any, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if len(n.FlowTable("s1")) != 0 {
		t.Fatal("removing the line must underive the entry")
	}
}

func TestAdvanceToMonotone(t *testing.T) {
	n := NewNetwork()
	n.AdvanceTo(100)
	if n.Tick() != 100 {
		t.Errorf("tick = %d", n.Tick())
	}
	n.AdvanceTo(50) // no-op backwards
	if n.Tick() != 100 {
		t.Error("AdvanceTo must not rewind")
	}
}
