// Package sdn models a software-defined network on top of the NDlog
// engine, in the style of the paper's SDN case studies (§6.1): switches
// with priority-matched flow tables, a declarative controller that
// compiles operator intents into flow entries, mirroring (the DPI box of
// Figure 1), and packet forwarding with OpenFlow highest-priority-match
// semantics.
//
// Flow entries are derived state: the controller derives a policyRoute
// for every (intent, hop) pair and installs flow entries on switches that
// are up. This gives flow entries the deep provenance the paper's trees
// exhibit, and lets DiffProv trace a misrouted packet all the way back to
// the misconfigured intent. Hard-coded entries (staticEntry) are also
// supported, e.g. for the Stanford scenario's forwarding tables.
package sdn

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// modelSource is the NDlog model of the network. Packets carry
// (src, dst, proto); flow entries match source and destination prefixes.
const modelSource = `
// Controller state (all mutable configuration).
table link/2 base mutable;          // (from, to), at the controller
table switchUp/1 base mutable;      // (sw), at the controller
table hop/3 base mutable;           // (dstHost, sw, nxt): routing step toward a host
table intent/4 base mutable;        // (prio, srcMatch, dstMatch, dstHost)
table mirrorIntent/4 base mutable;  // (sw, srcMatch, dstMatch, mirrorDst)
table staticEntry/4 base mutable;   // (prio, srcMatch, dstMatch, nxt), located on a switch
table configLine/5 base mutable;    // (fileChecksum, prio, srcMatch, dstMatch, nxt): one parsed line of a router config
table configFile/1 base mutable;    // (fileChecksum): a loaded router configuration

// Derived controller and switch state.
table policyRoute/5;                // (prio, srcMatch, dstMatch, sw, nxt)
table flowEntry/4;                  // (prio, srcMatch, dstMatch, nxt), on a switch
table mirrorEntry/3;                // (srcMatch, dstMatch, mirrorDst), on a switch

// Events.
table packet/3 event base;          // (src, dst, proto)

// The controller program: intents compile to per-switch routes, which
// are installed as flow entries on live switches over live links.
rule pr policyRoute(@C, Prio, SM, DM, Sw, Nxt) :-
    intent(@C, Prio, SM, DM, H),
    hop(@C, H, Sw, Nxt).

rule fi flowEntry(@Sw, Prio, SM, DM, Nxt) :-
    policyRoute(@C, Prio, SM, DM, Sw, Nxt),
    switchUp(@C, Sw),
    link(@C, Sw, Nxt).

rule se flowEntry(@Sw, Prio, SM, DM, Nxt) :-
    staticEntry(@Sw, Prio, SM, DM, Nxt).

// Router-configuration parsing: a config line yields a flow entry once
// its file is loaded on the switch.
rule fc flowEntry(@Sw, Prio, SM, DM, Nxt) :-
    configLine(@Sw, F, Prio, SM, DM, Nxt),
    configFile(@Sw, F).

rule mi mirrorEntry(@Sw, SM, DM, D) :-
    mirrorIntent(@C, Sw, SM, DM, D),
    switchUp(@C, Sw).

// The data plane: a packet follows the highest-priority matching entry;
// mirror entries copy matching traffic (Figure 1 DPI tap).
rule fw packet(@Nxt, Src, Dst, Pr) :-
    packet(@Sw, Src, Dst, Pr),
    flowEntry(@Sw, Prio, SM, DM, Nxt),
    matches(Src, SM),
    matches(Dst, DM),
    argmax Prio.

rule mr packet(@D, Src, Dst, Pr) :-
    packet(@Sw, Src, Dst, Pr),
    mirrorEntry(@Sw, SM, DM, D),
    matches(Src, SM),
    matches(Dst, DM).
`

// Program parses the network model.
func Program() *ndlog.Program {
	return ndlog.MustParse(modelSource)
}

// Any is the match-everything prefix.
var Any = ndlog.MustParsePrefix("0.0.0.0/0")

// Header identifies a packet.
type Header struct {
	Src, Dst ndlog.IP
	Proto    int64
}

// Tuple returns the packet tuple for the header.
func (h Header) Tuple() ndlog.Tuple {
	return ndlog.NewTuple("packet", h.Src, h.Dst, ndlog.Int(h.Proto))
}

func (h Header) String() string {
	return fmt.Sprintf("%s -> %s proto %d", h.Src, h.Dst, h.Proto)
}

// Network is a simulated SDN: a replay session over the model plus
// convenience operations for building topologies, installing policy, and
// injecting traffic.
type Network struct {
	sess       *replay.Session
	controller string
	tick       int64
}

// Option configures a Network.
type Option func(*Network)

// WithController names the controller node (default "controller").
func WithController(name string) Option {
	return func(n *Network) { n.controller = name }
}

// WithSessionOptions is applied to the underlying replay session.
func WithSessionOptions(opts ...replay.SessionOption) Option {
	return func(n *Network) {
		n.sess = replay.NewSession(Program(), opts...)
	}
}

// NewNetwork creates an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		sess:       replay.NewSession(Program()),
		controller: "controller",
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Session exposes the underlying replay session (for DiffProv worlds and
// the benchmark harness).
func (n *Network) Session() *replay.Session { return n.sess }

// Controller returns the controller node name.
func (n *Network) Controller() string { return n.controller }

// Tick returns the current logical time; every injection advances it.
func (n *Network) Tick() int64 { return n.tick }

// AdvanceTo moves the injection clock forward.
func (n *Network) AdvanceTo(tick int64) {
	if tick > n.tick {
		n.tick = tick
	}
}

func (n *Network) step() int64 {
	n.tick++
	return n.tick
}

// AddLink registers a unidirectional link in the controller's topology.
func (n *Network) AddLink(from, to string) error {
	return n.sess.Insert(n.controller, ndlog.NewTuple("link", ndlog.Str(from), ndlog.Str(to)), n.step())
}

// SwitchUp marks a switch as alive.
func (n *Network) SwitchUp(sw string) error {
	return n.sess.Insert(n.controller, ndlog.NewTuple("switchUp", ndlog.Str(sw)), n.step())
}

// AddPath installs the routing steps (and links) for reaching dstHost
// along the given switch path; the last element is the host itself.
func (n *Network) AddPath(dstHost string, path ...string) error {
	if len(path) < 2 {
		return fmt.Errorf("sdn: path to %s needs at least two nodes", dstHost)
	}
	for i := 0; i+1 < len(path); i++ {
		if err := n.AddLink(path[i], path[i+1]); err != nil {
			return err
		}
		hop := ndlog.NewTuple("hop", ndlog.Str(dstHost), ndlog.Str(path[i]), ndlog.Str(path[i+1]))
		if err := n.sess.Insert(n.controller, hop, n.step()); err != nil {
			return err
		}
	}
	return nil
}

// AddIntent installs an operator intent: traffic matching (src, dst)
// prefixes is routed toward dstHost with the given priority.
func (n *Network) AddIntent(prio int64, src, dst ndlog.Prefix, dstHost string) error {
	t := ndlog.NewTuple("intent", ndlog.Int(prio), src, dst, ndlog.Str(dstHost))
	return n.sess.Insert(n.controller, t, n.step())
}

// RemoveIntent deletes a previously installed intent (rule expiration).
func (n *Network) RemoveIntent(prio int64, src, dst ndlog.Prefix, dstHost string) error {
	t := ndlog.NewTuple("intent", ndlog.Int(prio), src, dst, ndlog.Str(dstHost))
	return n.sess.Delete(n.controller, t, n.step())
}

// AddMirror installs a mirroring intent on a switch (the DPI tap).
func (n *Network) AddMirror(sw string, src, dst ndlog.Prefix, mirrorDst string) error {
	t := ndlog.NewTuple("mirrorIntent", ndlog.Str(sw), src, dst, ndlog.Str(mirrorDst))
	return n.sess.Insert(n.controller, t, n.step())
}

// AddStaticEntry installs a hard-coded flow entry directly on a switch.
func (n *Network) AddStaticEntry(sw string, prio int64, src, dst ndlog.Prefix, nxt string) error {
	t := ndlog.NewTuple("staticEntry", ndlog.Int(prio), src, dst, ndlog.Str(nxt))
	return n.sess.Insert(sw, t, n.step())
}

// RemoveStaticEntry deletes a hard-coded entry.
func (n *Network) RemoveStaticEntry(sw string, prio int64, src, dst ndlog.Prefix, nxt string) error {
	t := ndlog.NewTuple("staticEntry", ndlog.Int(prio), src, dst, ndlog.Str(nxt))
	return n.sess.Delete(sw, t, n.step())
}

// PinStaticEntry declares a hard-coded entry off-limits for DiffProv
// (§4.7's immutable static flow entry). Must be called after Run so the
// live engine knows the tuple.
func (n *Network) PinStaticEntry(sw string, prio int64, src, dst ndlog.Prefix, nxt string) {
	t := ndlog.NewTuple("staticEntry", ndlog.Int(prio), src, dst, ndlog.Str(nxt))
	n.sess.Live().PinImmutable(sw, t)
}

// LoadConfigFile marks a router configuration (by checksum) as loaded on
// a switch; its lines then install flow entries.
func (n *Network) LoadConfigFile(sw string, file ndlog.ID) error {
	return n.sess.Insert(sw, ndlog.NewTuple("configFile", file), n.step())
}

// AddConfigLine adds one parsed line of a router configuration.
func (n *Network) AddConfigLine(sw string, file ndlog.ID, prio int64, src, dst ndlog.Prefix, nxt string) error {
	t := ndlog.NewTuple("configLine", file, ndlog.Int(prio), src, dst, ndlog.Str(nxt))
	return n.sess.Insert(sw, t, n.step())
}

// RemoveConfigLine deletes a configuration line (and thus its entry).
func (n *Network) RemoveConfigLine(sw string, file ndlog.ID, prio int64, src, dst ndlog.Prefix, nxt string) error {
	t := ndlog.NewTuple("configLine", file, ndlog.Int(prio), src, dst, ndlog.Str(nxt))
	return n.sess.Delete(sw, t, n.step())
}

// InjectPacket sends a packet into the network at a switch, returning the
// tick at which it entered.
func (n *Network) InjectPacket(sw string, h Header) (int64, error) {
	tick := n.step()
	return tick, n.sess.Insert(sw, h.Tuple(), tick)
}

// InjectPacketAt sends a packet at a specific tick.
func (n *Network) InjectPacketAt(sw string, h Header, tick int64) error {
	n.AdvanceTo(tick)
	return n.sess.Insert(sw, h.Tuple(), tick)
}

// Run processes all pending events.
func (n *Network) Run() error { return n.sess.Run() }

// Arrived reports whether the packet was ever delivered to the node in
// the live execution.
func (n *Network) Arrived(node string, h Header) bool {
	return n.sess.Live().ExistsEver(node, h.Tuple())
}

// ArrivalTree returns the provenance tree of the packet's arrival at the
// node, reconstructing provenance by replay if necessary.
func (n *Network) ArrivalTree(node string, h Header) (*provenance.Tree, error) {
	_, g, err := n.sess.Graph()
	if err != nil {
		return nil, err
	}
	ap := g.LastAppear(node, h.Tuple())
	if ap == nil {
		return nil, fmt.Errorf("sdn: packet %s never arrived at %s", h, node)
	}
	return g.Tree(ap.ID), nil
}

// FlowTable returns the live flow entries of a switch.
func (n *Network) FlowTable(sw string) []ndlog.Tuple {
	return n.sess.Live().LiveTuples(sw, "flowEntry")
}
