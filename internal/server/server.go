// Package server exposes the DiffProv debugger over HTTP: a small
// JSON API for listing the case studies, fetching provenance trees, and
// running differential diagnoses — the kind of front-end an operator
// would point dashboards or scripts at.
//
// Endpoints:
//
//	GET /scenarios                  list scenarios
//	GET /scenarios/{name}           scenario summary (tree sizes, diff)
//	GET /scenarios/{name}/tree/good provenance tree (text or DOT)
//	GET /scenarios/{name}/tree/bad  ?format=dot for Graphviz
//	POST /scenarios/{name}/diagnose run DiffProv, return Δ and timings
//	POST /scenarios/{name}/autoref  diagnose with a mined reference
//
// Concurrency model: scenarios are built lazily, once (per-scenario
// singleflight), and cached. Each diagnosis runs against a private clone
// of the scenario's replay session (see replay.Session.Clone), so any
// number of diagnoses proceed in parallel without sharing mutable replay
// state — replay is deterministic, so parallel requests return identical
// results. A bounded worker pool caps concurrent diagnoses; when it is
// saturated the server sheds load with 429 and a Retry-After hint.
// Request contexts are threaded into the reasoning engine, so a client
// disconnect or deadline cancels the diagnosis between rounds and inside
// counterfactual replays.
//
// Error taxonomy:
//
//	404 unknown scenario name, unknown tree selector
//	422 the diagnosis itself failed (unsuitable reference, no progress)
//	429 the diagnosis worker pool is saturated (Retry-After is set)
//	500 a scenario exists but failed to build
//	503 the diagnosis was cancelled (client gone or deadline exceeded)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/scenarios"
	"repro/internal/store"
	"repro/internal/treediff"
)

// Server is the HTTP front-end.
type Server struct {
	scale scenarios.Scale

	// workers bounds concurrent diagnoses; sem holds one token per slot.
	workers int
	sem     chan struct{}

	// parallelism is the per-diagnosis fan-out (core.Options.Parallelism)
	// for candidate evaluation inside a single request. The default of 1
	// keeps each diagnosis sequential — cross-request concurrency is
	// already provided by the worker pool — so raising it trades
	// per-request latency against aggregate throughput.
	parallelism int

	// dataDir, when set, backs each scenario's replay session with a
	// persistent segmented store under a per-scenario subdirectory, so a
	// restarted server recovers logs and checkpoints instead of
	// re-recording them.
	dataDir string

	// prefixCache, when positive, overrides how many materialized prefix
	// engines each scenario's session keeps alive (replay's default is 8).
	prefixCache int

	// build constructs a scenario; replaceable in tests.
	build func(name string, scale scenarios.Scale, opts ...scenarios.BuildOption) (*scenarios.Scenario, error)

	mu    sync.Mutex
	cache map[string]*scenarioEntry

	// testHookDiagnoseStart, when set, runs inside a diagnosis slot
	// before the diagnosis starts (used by tests to hold the pool full).
	testHookDiagnoseStart func()
}

// scenarioEntry is a singleflight cell: the first request for a scenario
// builds it, concurrent requests wait on the same once, and the outcome
// (including a build failure) is cached.
type scenarioEntry struct {
	once sync.Once
	sc   *scenarios.Scenario
	err  error
}

// Option configures a Server.
type Option func(*Server)

// WithWorkers bounds the number of concurrent diagnoses (default
// GOMAXPROCS). Values < 1 are treated as 1.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithParallelism sets the per-diagnosis candidate-evaluation fan-out
// (default 1: sequential within a request). Values < 1 are treated as 1.
// The result of a diagnosis is byte-identical at any setting.
func WithParallelism(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.parallelism = n
	}
}

// WithDataDir persists each scenario's base-event log and checkpoints
// under dir (one subdirectory per scenario). Scenario builds are
// deterministic, so a restarted server re-drives the recorded execution,
// verifies it against the stored prefix, and reuses durable checkpoints
// — the crash-recovery path of cmd/diffprovd's -data-dir flag.
func WithDataDir(dir string) Option {
	return func(s *Server) { s.dataDir = dir }
}

// WithPrefixCacheSize overrides how many materialized prefix engines
// each scenario's replay session keeps alive (replay's default is 8).
// Larger caches keep more counterfactual anchors warm at the cost of
// retaining more forked engine state; values < 1 are ignored.
func WithPrefixCacheSize(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.prefixCache = n
		}
	}
}

// New creates a server at the given workload scale.
func New(scale scenarios.Scale, opts ...Option) *Server {
	s := &Server{
		scale:       scale,
		workers:     runtime.GOMAXPROCS(0),
		parallelism: 1,
		build:       scenarios.Build,
		cache:       map[string]*scenarioEntry{},
	}
	for _, o := range opts {
		o(s)
	}
	s.sem = make(chan struct{}, s.workers)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleList)
	mux.HandleFunc("GET /scenarios/{name}", s.handleSummary)
	mux.HandleFunc("GET /scenarios/{name}/tree/{which}", s.handleTree)
	mux.HandleFunc("POST /scenarios/{name}/diagnose", s.handleDiagnose)
	mux.HandleFunc("POST /scenarios/{name}/autoref", s.handleAutoRef)
	return mux
}

// scenario returns the cached scenario, building it exactly once even
// under concurrent requests. The build outcome is cached either way:
// rebuilding on every request would turn one failure into a 500 storm.
func (s *Server) scenario(name string) (*scenarios.Scenario, error) {
	key := strings.ToUpper(name)
	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &scenarioEntry{}
		s.cache[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		var opts []scenarios.BuildOption
		if s.dataDir != "" {
			dir := filepath.Join(s.dataDir, store.SanitizeName(key))
			opts = append(opts, scenarios.WithSessionOptions(replay.WithStorage(dir)))
		}
		if s.prefixCache > 0 {
			opts = append(opts, scenarios.WithSessionOptions(replay.WithPrefixCacheSize(s.prefixCache)))
		}
		e.sc, e.err = s.build(key, s.scale, opts...)
	})
	return e.sc, e.err
}

// writeScenarioErr maps a scenario lookup error onto the taxonomy:
// unknown names are the client's fault (404), build failures ours (500).
func writeScenarioErr(w http.ResponseWriter, err error) {
	if errors.Is(err, scenarios.ErrUnknownScenario) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeErr(w, http.StatusInternalServerError, err)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// scenarioInfo is the JSON shape of a scenario listing entry. Error is
// set when the scenario failed to build; the listing still includes it so
// one broken scenario does not hide the healthy ones.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := make([]scenarioInfo, 0, len(scenarios.Names()))
	for _, name := range scenarios.Names() {
		sc, err := s.scenario(name)
		if err != nil {
			out = append(out, scenarioInfo{Name: name, Error: err.Error()})
			continue
		}
		out = append(out, scenarioInfo{Name: sc.Name, Description: sc.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// summary is the JSON shape of a scenario summary.
type summary struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	GoodTree    int    `json:"goodTreeVertexes"`
	BadTree     int    `json:"badTreeVertexes"`
	PlainDiff   int    `json:"plainDiffVertexes"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeScenarioErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, summary{
		Name:        sc.Name,
		Description: sc.Description,
		GoodTree:    sc.Good.Size(),
		BadTree:     sc.Bad.Size(),
		PlainDiff:   treediff.PlainDiff(sc.Good, sc.Bad),
	})
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeScenarioErr(w, err)
		return
	}
	tree := sc.Good
	switch r.PathValue("which") {
	case "good":
	case "bad":
		tree = sc.Bad
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("tree must be good or bad"))
		return
	}
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = tree.WriteDOT(w, sc.Name)
	case "explain":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tree.Explain())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tree.String())
	}
}

// diagnosis is the JSON shape of a diagnosis response. Every duration is
// reported twice: a machine-readable *Ns int64 (nanoseconds) and a
// humanized string. elapsedNs predates the split and is kept for
// compatibility.
type diagnosis struct {
	Scenario   string   `json:"scenario"`
	Changes    []string `json:"changes"`
	Rounds     int      `json:"rounds"`
	Iterations int      `json:"iterations"`

	ReasoningNs  int64  `json:"reasoningNs"`
	Reasoning    string `json:"reasoning"`
	UpdateTreeNs int64  `json:"treeUpdatesNs"`
	UpdateTree   string `json:"treeUpdates"`
	ElapsedNs    int64  `json:"elapsedNs"`
	Elapsed      string `json:"elapsed"`

	// Replays counts this request's counterfactual replays, and
	// ReplayNs/Replay the time spent in them — per-request deltas from
	// the private session clone, not lifetime accumulations.
	Replays  int    `json:"replays,omitempty"`
	ReplayNs int64  `json:"replayNs,omitempty"`
	Replay   string `json:"replay,omitempty"`

	// Incremental roll-forward activity for this request: how many
	// replays forked a cached prefix vs built one, the time spent
	// forking, and how many logged base events the forks skipped.
	PrefixHits    int64 `json:"prefixHits,omitempty"`
	PrefixMisses  int64 `json:"prefixMisses,omitempty"`
	ForkNs        int64 `json:"forkNs,omitempty"`
	EventsSkipped int64 `json:"eventsSkipped,omitempty"`

	// Delta-replay activity for this request: how many logged base
	// events counterfactual replays re-fired after the fork point (zero
	// on every cache hit with delta replay on — changes propagate
	// through the delta phase instead), and how many (node, table)
	// pairs the delta phases actually touched.
	EventsReFired int64 `json:"eventsReFired,omitempty"`
	DirtyTables   int64 `json:"dirtyTables,omitempty"`

	// Fingerprint and parallel-evaluation activity for this request:
	// divergence alignments answered from the fingerprint memo,
	// counterfactual replays deduplicated by change-set hash, and
	// candidate evaluations dispatched to pool workers.
	FingerprintHits    int64 `json:"fingerprintHits,omitempty"`
	CandidatesDeduped  int64 `json:"candidatesDeduped,omitempty"`
	ParallelCandidates int64 `json:"parallelCandidates,omitempty"`
	CandidatesSliced   int64 `json:"candidatesSliced,omitempty"`

	Reference string `json:"reference,omitempty"`
}

func diagnosisOf(name string, res *core.Result, elapsed time.Duration) diagnosis {
	reasoning := res.Timings.FindSeed + res.Timings.Divergence + res.Timings.MakeAppear
	d := diagnosis{
		Scenario:     name,
		Changes:      []string{},
		Rounds:       len(res.Rounds),
		Iterations:   res.Iterations,
		ReasoningNs:  reasoning.Nanoseconds(),
		Reasoning:    reasoning.String(),
		UpdateTreeNs: res.Timings.UpdateTree.Nanoseconds(),
		UpdateTree:   res.Timings.UpdateTree.String(),
		ElapsedNs:    elapsed.Nanoseconds(),
		Elapsed:      elapsed.String(),

		FingerprintHits:    res.Stats.FingerprintHits,
		CandidatesDeduped:  res.Stats.CandidatesDeduped,
		ParallelCandidates: res.Stats.ParallelCandidates,
		CandidatesSliced:   res.Stats.CandidatesSliced,
	}
	for _, c := range res.Changes {
		d.Changes = append(d.Changes, c.String())
	}
	return d
}

// acquireSlot claims a diagnosis worker slot, or sheds the request. It
// returns a release func and reports success; on failure it has already
// written the 429 (pool saturated) or 503 (client gone) response.
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request) (func(), bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if err := r.Context().Err(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return nil, false
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusTooManyRequests,
		fmt.Errorf("all %d diagnosis workers are busy; retry shortly", s.workers))
	return nil, false
}

// writeDiagnosisErr maps a diagnosis failure onto the taxonomy.
func writeDiagnosisErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		// Diagnosis failures (unsuitable reference, no progress, ...)
		// are semantic errors in the request: the scenario and server
		// are fine, the diagnosis question has no answer.
		writeErr(w, http.StatusUnprocessableEntity, err)
	}
}

// runDiagnosis isolates the scenario, runs fn against the isolated copy,
// and attaches the per-request replay statistics to the response.
func runDiagnosis(ctx context.Context, sc *scenarios.Scenario,
	fn func(context.Context, *scenarios.Scenario) (*core.Result, diagnosis, error)) (diagnosis, error) {
	iso, err := sc.Isolated()
	if err != nil {
		return diagnosis{}, err
	}
	_, d, err := fn(ctx, iso)
	if err != nil {
		return diagnosis{}, err
	}
	if iso.BadSession != nil {
		d.Replays = iso.BadSession.ReplayCount
		d.ReplayNs = iso.BadSession.ReplayTime.Nanoseconds()
		d.Replay = iso.BadSession.ReplayTime.String()
		d.PrefixHits = iso.BadSession.Stats.PrefixHits
		d.PrefixMisses = iso.BadSession.Stats.PrefixMisses
		d.ForkNs = iso.BadSession.Stats.ForkNanos
		d.EventsSkipped = iso.BadSession.Stats.EventsSkipped
		d.EventsReFired = iso.BadSession.Stats.EventsReFired
		d.DirtyTables = iso.BadSession.Stats.DirtyTables
	}
	return d, nil
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeScenarioErr(w, err)
		return
	}
	release, ok := s.acquireSlot(w, r)
	if !ok {
		return
	}
	defer release()
	if s.testHookDiagnoseStart != nil {
		s.testHookDiagnoseStart()
	}
	d, err := runDiagnosis(r.Context(), sc,
		func(ctx context.Context, iso *scenarios.Scenario) (*core.Result, diagnosis, error) {
			start := time.Now()
			res, err := iso.DiagnoseOptions(ctx, core.Options{Parallelism: s.parallelism})
			if err != nil {
				return nil, diagnosis{}, err
			}
			return res, diagnosisOf(iso.Name, res, time.Since(start)), nil
		})
	if err != nil {
		writeDiagnosisErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleAutoRef(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeScenarioErr(w, err)
		return
	}
	release, ok := s.acquireSlot(w, r)
	if !ok {
		return
	}
	defer release()
	if s.testHookDiagnoseStart != nil {
		s.testHookDiagnoseStart()
	}
	d, err := runDiagnosis(r.Context(), sc,
		func(ctx context.Context, iso *scenarios.Scenario) (*core.Result, diagnosis, error) {
			start := time.Now()
			res, ref, err := core.AutoDiagnose(ctx, iso.Bad, iso.World, core.Options{Parallelism: s.parallelism})
			if err != nil {
				return nil, diagnosis{}, err
			}
			d := diagnosisOf(iso.Name, res, time.Since(start))
			d.Reference = ref.Vertex.Tuple.String()
			return res, d, nil
		})
	if err != nil {
		writeDiagnosisErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}
