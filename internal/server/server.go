// Package server exposes the DiffProv debugger over HTTP: a small
// JSON API for listing the case studies, fetching provenance trees, and
// running differential diagnoses — the kind of front-end an operator
// would point dashboards or scripts at.
//
// Endpoints:
//
//	GET /scenarios                  list scenarios
//	GET /scenarios/{name}           scenario summary (tree sizes, diff)
//	GET /scenarios/{name}/tree/good provenance tree (text or DOT)
//	GET /scenarios/{name}/tree/bad  ?format=dot for Graphviz
//	POST /scenarios/{name}/diagnose run DiffProv, return Δ and timings
//	POST /scenarios/{name}/autoref  diagnose with a mined reference
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/treediff"
)

// Server is the HTTP front-end. Scenarios are built lazily and cached;
// diagnosis runs on the cached instance. Diagnoses are serialized per
// server: the underlying replay sessions accumulate timing state and are
// not safe for concurrent counterfactual replays.
type Server struct {
	scale scenarios.Scale

	mu    sync.Mutex
	cache map[string]*scenarios.Scenario

	// diagMu serializes diagnosis runs (they mutate session replay
	// statistics and share scenario state).
	diagMu sync.Mutex
}

// New creates a server at the given workload scale.
func New(scale scenarios.Scale) *Server {
	return &Server{scale: scale, cache: map[string]*scenarios.Scenario{}}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleList)
	mux.HandleFunc("GET /scenarios/{name}", s.handleSummary)
	mux.HandleFunc("GET /scenarios/{name}/tree/{which}", s.handleTree)
	mux.HandleFunc("POST /scenarios/{name}/diagnose", s.handleDiagnose)
	mux.HandleFunc("POST /scenarios/{name}/autoref", s.handleAutoRef)
	return mux
}

func (s *Server) scenario(name string) (*scenarios.Scenario, error) {
	key := strings.ToUpper(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc, ok := s.cache[key]; ok {
		return sc, nil
	}
	sc, err := scenarios.Build(key, s.scale)
	if err != nil {
		return nil, err
	}
	s.cache[key] = sc
	return sc, nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// scenarioInfo is the JSON shape of a scenario listing entry.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, name := range scenarios.Names() {
		sc, err := s.scenario(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, scenarioInfo{Name: sc.Name, Description: sc.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// summary is the JSON shape of a scenario summary.
type summary struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	GoodTree    int    `json:"goodTreeVertexes"`
	BadTree     int    `json:"badTreeVertexes"`
	PlainDiff   int    `json:"plainDiffVertexes"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, summary{
		Name:        sc.Name,
		Description: sc.Description,
		GoodTree:    sc.Good.Size(),
		BadTree:     sc.Bad.Size(),
		PlainDiff:   treediff.PlainDiff(sc.Good, sc.Bad),
	})
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	tree := sc.Good
	switch r.PathValue("which") {
	case "good":
	case "bad":
		tree = sc.Bad
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("tree must be good or bad"))
		return
	}
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = tree.WriteDOT(w, sc.Name)
	case "explain":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tree.Explain())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tree.String())
	}
}

// diagnosis is the JSON shape of a diagnosis response.
type diagnosis struct {
	Scenario   string        `json:"scenario"`
	Changes    []string      `json:"changes"`
	Rounds     int           `json:"rounds"`
	Iterations int           `json:"iterations"`
	ReasoningM string        `json:"reasoning"`
	UpdateTree string        `json:"treeUpdates"`
	Elapsed    time.Duration `json:"elapsedNs"`
	Reference  string        `json:"reference,omitempty"`
}

func diagnosisOf(name string, res *core.Result, elapsed time.Duration) diagnosis {
	d := diagnosis{
		Scenario:   name,
		Rounds:     len(res.Rounds),
		Iterations: res.Iterations,
		ReasoningM: (res.Timings.FindSeed + res.Timings.Divergence + res.Timings.MakeAppear).String(),
		UpdateTree: res.Timings.UpdateTree.String(),
		Elapsed:    elapsed,
	}
	for _, c := range res.Changes {
		d.Changes = append(d.Changes, c.String())
	}
	return d
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.diagMu.Lock()
	start := time.Now()
	res, err := sc.Diagnose()
	elapsed := time.Since(start)
	s.diagMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, diagnosisOf(sc.Name, res, elapsed))
}

func (s *Server) handleAutoRef(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scenario(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.diagMu.Lock()
	start := time.Now()
	res, ref, err := core.AutoDiagnose(sc.Bad, sc.World, core.Options{})
	elapsed := time.Since(start)
	s.diagMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	d := diagnosisOf(sc.Name, res, elapsed)
	d.Reference = ref.Vertex.Tuple.String()
	writeJSON(w, http.StatusOK, d)
}
