package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scenarios"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(scenarios.Small).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestListScenarios(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/scenarios")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out []map[string]string
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("scenarios = %d, want 8", len(out))
	}
	if out[0]["name"] != "SDN1" || out[0]["description"] == "" {
		t.Errorf("first scenario = %v", out[0])
	}
}

func TestSummary(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/scenarios/sdn1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var s struct {
		GoodTree  int `json:"goodTreeVertexes"`
		BadTree   int `json:"badTreeVertexes"`
		PlainDiff int `json:"plainDiffVertexes"`
	}
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.GoodTree < 20 || s.BadTree < 20 || s.PlainDiff < 4 {
		t.Errorf("summary = %+v", s)
	}
	if code, _ := get(t, ts.URL+"/scenarios/NOPE"); code != http.StatusNotFound {
		t.Errorf("unknown scenario status = %d", code)
	}
}

func TestTreeFormats(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/scenarios/SDN1/tree/bad")
	if code != http.StatusOK || !strings.Contains(string(body), "APPEAR") {
		t.Errorf("text tree: %d %s", code, body[:min(80, len(body))])
	}
	code, body = get(t, ts.URL+"/scenarios/SDN1/tree/good?format=dot")
	if code != http.StatusOK || !strings.Contains(string(body), "digraph") {
		t.Errorf("dot tree: %d", code)
	}
	code, body = get(t, ts.URL+"/scenarios/SDN1/tree/good?format=explain")
	if code != http.StatusOK || !strings.Contains(string(body), "Why did") {
		t.Errorf("explain tree: %d", code)
	}
	if code, _ := get(t, ts.URL+"/scenarios/SDN1/tree/ugly"); code != http.StatusNotFound {
		t.Errorf("bad tree selector status = %d", code)
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := post(t, ts.URL+"/scenarios/SDN1/diagnose")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var d struct {
		Changes []string `json:"changes"`
		Rounds  int      `json:"rounds"`
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Changes) != 1 || !strings.Contains(d.Changes[0], "4.3.2.0/23") {
		t.Errorf("diagnosis = %+v", d)
	}
	if d.Rounds != 1 {
		t.Errorf("rounds = %d", d.Rounds)
	}
}

func TestAutoRefEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := post(t, ts.URL+"/scenarios/SDN1/autoref")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var d struct {
		Changes   []string `json:"changes"`
		Reference string   `json:"reference"`
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reference == "" {
		t.Error("autoref response must name the mined reference")
	}
	if len(d.Changes) != 1 {
		t.Errorf("changes = %v", d.Changes)
	}
}

func TestScenarioCaching(t *testing.T) {
	srv := New(scenarios.Small)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get(t, ts.URL+"/scenarios/SDN2")
	get(t, ts.URL+"/scenarios/SDN2")
	srv.mu.Lock()
	n := len(srv.cache)
	srv.mu.Unlock()
	if n != 1 {
		t.Errorf("cache entries = %d, want 1", n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestConcurrentDiagnoses(t *testing.T) {
	ts := testServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := []string{"SDN1", "SDN2"}[i%2]
			resp, err := http.Post(ts.URL+"/scenarios/"+name+"/diagnose", "application/json", nil)
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
