package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/provenance"
	"repro/internal/scenarios"
)

func testServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(scenarios.Small, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestEndpointSurface covers the whole API surface against one server:
// listing, summaries, tree formats, diagnosis, autoref, and the error
// taxonomy (404 for unknown names and selectors).
func TestEndpointSurface(t *testing.T) {
	ts := testServer(t, WithWorkers(4))
	tests := []struct {
		name       string
		method     string
		path       string
		wantStatus int
		wantBody   string // substring; "" skips the check
	}{
		{"list", "GET", "/scenarios", http.StatusOK, `"SDN1"`},
		{"summary", "GET", "/scenarios/sdn1", http.StatusOK, `"goodTreeVertexes"`},
		{"summary lowercase name", "GET", "/scenarios/mr1-d", http.StatusOK, `"MR1-D"`},
		{"summary unknown", "GET", "/scenarios/NOPE", http.StatusNotFound, "unknown scenario"},
		{"tree text", "GET", "/scenarios/SDN1/tree/bad", http.StatusOK, "APPEAR"},
		{"tree dot", "GET", "/scenarios/SDN1/tree/good?format=dot", http.StatusOK, "digraph"},
		{"tree explain", "GET", "/scenarios/SDN1/tree/good?format=explain", http.StatusOK, "Why did"},
		{"tree bad selector", "GET", "/scenarios/SDN1/tree/ugly", http.StatusNotFound, "good or bad"},
		{"tree unknown scenario", "GET", "/scenarios/NOPE/tree/good", http.StatusNotFound, "unknown scenario"},
		{"diagnose", "POST", "/scenarios/SDN1/diagnose", http.StatusOK, "4.3.2.0/23"},
		{"diagnose unknown", "POST", "/scenarios/NOPE/diagnose", http.StatusNotFound, "unknown scenario"},
		{"autoref", "POST", "/scenarios/SDN1/autoref", http.StatusOK, `"reference"`},
		{"autoref unknown", "POST", "/scenarios/NOPE/autoref", http.StatusNotFound, "unknown scenario"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body []byte
			switch tc.method {
			case "GET":
				code, body = get(t, ts.URL+tc.path)
			case "POST":
				code, body = post(t, ts.URL+tc.path)
			}
			if code != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d (%s)", tc.method, tc.path, code, tc.wantStatus, body)
			}
			if tc.wantBody != "" && !strings.Contains(string(body), tc.wantBody) {
				t.Errorf("%s %s: body %q does not contain %q", tc.method, tc.path, body, tc.wantBody)
			}
		})
	}
}

func TestListScenarios(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/scenarios")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out []map[string]string
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("scenarios = %d, want 8", len(out))
	}
	if out[0]["name"] != "SDN1" || out[0]["description"] == "" {
		t.Errorf("first scenario = %v", out[0])
	}
}

// TestBuildFailureTaxonomy distinguishes an unknown scenario (404) from a
// scenario that exists but fails to build (500), and checks that the
// listing reports per-scenario build errors without dropping the healthy
// entries.
func TestBuildFailureTaxonomy(t *testing.T) {
	srv := New(scenarios.Small)
	srv.build = func(name string, scale scenarios.Scale, _ ...scenarios.BuildOption) (*scenarios.Scenario, error) {
		if name == "SDN2" {
			return nil, fmt.Errorf("synthetic build explosion")
		}
		return scenarios.Build(name, scale)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/scenarios/SDN2"); code != http.StatusInternalServerError {
		t.Errorf("broken build status = %d (%s), want 500", code, body)
	}
	if code, body := post(t, ts.URL+"/scenarios/SDN2/diagnose"); code != http.StatusInternalServerError {
		t.Errorf("broken build diagnose status = %d (%s), want 500", code, body)
	}
	if code, _ := get(t, ts.URL+"/scenarios/NOPE"); code != http.StatusNotFound {
		t.Errorf("unknown scenario status = %d, want 404", code)
	}

	code, body := get(t, ts.URL+"/scenarios")
	if code != http.StatusOK {
		t.Fatalf("list status %d: %s", code, body)
	}
	var out []scenarioInfo
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("listing dropped entries: %d, want 8", len(out))
	}
	broken := 0
	for _, e := range out {
		if e.Name == "SDN2" {
			broken++
			if !strings.Contains(e.Error, "synthetic build explosion") {
				t.Errorf("SDN2 entry error = %q", e.Error)
			}
		} else if e.Error != "" {
			t.Errorf("healthy entry %s carries error %q", e.Name, e.Error)
		}
	}
	if broken != 1 {
		t.Errorf("broken entries = %d, want 1", broken)
	}
}

// TestUnsuitableReference exercises the 422 path: a diagnosis that runs
// but fails (the reference tree is a config-state appearance, which is
// not comparable to the bad packet).
func TestUnsuitableReference(t *testing.T) {
	srv := New(scenarios.Small)
	srv.build = func(name string, scale scenarios.Scale, _ ...scenarios.BuildOption) (*scenarios.Scenario, error) {
		sc, err := scenarios.Build(name, scale)
		if err != nil {
			return nil, err
		}
		// Sabotage the reference: a configuration-state appearance is
		// never comparable to a packet outcome (seed type mismatch).
		g := sc.World.Graph()
		var badSeedTable string
		if seed, err := sc.Bad.FindSeed(); err == nil {
			badSeedTable = seed.Vertex.Tuple.Table
		}
		sabotaged := false
		g.Vertexes(func(v *provenance.Vertex) {
			if sabotaged || v.Type != provenance.Appear || v.Tuple.Table == badSeedTable {
				return
			}
			if decl := sc.World.Program().Decl(v.Tuple.Table); decl == nil || decl.Event {
				return
			}
			sc.Good = g.Tree(v.ID)
			sabotaged = true
		})
		if !sabotaged {
			return nil, fmt.Errorf("no state appearance to sabotage with")
		}
		return sc, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := post(t, ts.URL+"/scenarios/SDN1/diagnose")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", code, body)
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := post(t, ts.URL+"/scenarios/SDN1/diagnose")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var d struct {
		Changes      []string `json:"changes"`
		Rounds       int      `json:"rounds"`
		ReasoningNs  int64    `json:"reasoningNs"`
		Reasoning    string   `json:"reasoning"`
		UpdateTreeNs int64    `json:"treeUpdatesNs"`
		UpdateTree   string   `json:"treeUpdates"`
		ElapsedNs    int64    `json:"elapsedNs"`
		Elapsed      string   `json:"elapsed"`
		Replays      int      `json:"replays"`
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Changes) != 1 || !strings.Contains(d.Changes[0], "4.3.2.0/23") {
		t.Errorf("diagnosis = %+v", d)
	}
	if d.Rounds != 1 {
		t.Errorf("rounds = %d", d.Rounds)
	}
	if d.ElapsedNs <= 0 || d.Elapsed == "" {
		t.Errorf("elapsed missing: %+v", d)
	}
	if d.Reasoning == "" || d.UpdateTree == "" {
		t.Errorf("humanized timings missing: %+v", d)
	}
	if d.Replays <= 0 {
		t.Errorf("replays = %d, want > 0 (per-request replay stats)", d.Replays)
	}
}

// TestTimingsDoNotAccumulate runs the same diagnosis twice and checks the
// reported per-request counters are identical: before clone-per-request,
// ReplayCount accumulated across requests.
func TestTimingsDoNotAccumulate(t *testing.T) {
	ts := testServer(t)
	type stats struct {
		Replays      int   `json:"replays"`
		UpdateTreeNs int64 `json:"treeUpdatesNs"`
	}
	var first, second stats
	for i, dst := range []*stats{&first, &second} {
		code, body := post(t, ts.URL+"/scenarios/SDN1/diagnose")
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, body)
		}
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatal(err)
		}
	}
	if first.Replays != second.Replays {
		t.Errorf("replay counts drift across identical requests: %d then %d", first.Replays, second.Replays)
	}
	if first.Replays == 0 {
		t.Error("replay count = 0, expected the diagnosis to replay")
	}
}

func TestAutoRefEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := post(t, ts.URL+"/scenarios/SDN1/autoref")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var d struct {
		Changes   []string `json:"changes"`
		Reference string   `json:"reference"`
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reference == "" {
		t.Error("autoref response must name the mined reference")
	}
	if len(d.Changes) != 1 {
		t.Errorf("changes = %v", d.Changes)
	}
}

func TestScenarioCaching(t *testing.T) {
	srv := New(scenarios.Small)
	builds := 0
	inner := srv.build
	var mu sync.Mutex
	srv.build = func(name string, scale scenarios.Scale, _ ...scenarios.BuildOption) (*scenarios.Scenario, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return inner(name, scale)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/scenarios/SDN2")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	n := builds
	mu.Unlock()
	if n != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", n)
	}
	srv.mu.Lock()
	entries := len(srv.cache)
	srv.mu.Unlock()
	if entries != 1 {
		t.Errorf("cache entries = %d, want 1", entries)
	}
}

// TestPoolSaturation fills the single worker slot and checks that the
// next diagnosis is shed with 429 and a Retry-After hint, while
// non-diagnosis endpoints keep serving.
func TestPoolSaturation(t *testing.T) {
	srv := New(scenarios.Small, WithWorkers(1))
	occupied := make(chan struct{})
	release := make(chan struct{})
	srv.testHookDiagnoseStart = func() {
		close(occupied)
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Warm the scenario cache so the slow request holds only the slot.
	get(t, ts.URL+"/scenarios/SDN1")

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/scenarios/SDN1/diagnose", "application/json", nil)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slot holder status %d", resp.StatusCode)
			}
		}
		errc <- err
	}()
	<-occupied

	resp, err := http.Post(ts.URL+"/scenarios/SDN1/diagnose", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated pool status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response must set Retry-After")
	}
	// Read-only endpoints are not pooled and must still respond.
	if code, _ := get(t, ts.URL+"/scenarios/SDN1"); code != http.StatusOK {
		t.Errorf("summary during saturation = %d, want 200", code)
	}

	srv.testHookDiagnoseStart = nil
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The slot is free again: the next diagnosis succeeds.
	if code, body := post(t, ts.URL+"/scenarios/SDN1/diagnose"); code != http.StatusOK {
		t.Errorf("post-release diagnose = %d (%s), want 200", code, body)
	}
}

// TestDiagnoseCancellation checks that an already-expired deadline stops
// the diagnosis and is reported as 503, not 422.
func TestDiagnoseCancellation(t *testing.T) {
	ts := testServer(t)
	// Warm the cache so cancellation hits the diagnosis, not the build.
	get(t, ts.URL+"/scenarios/SDN1")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/scenarios/SDN1/diagnose", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the client-side cancellation to error")
	}
	// Server-side mapping: a diagnosis cut short by its context is 503.
	// Exercise it through the handler directly with a cancelled context.
	srv := New(scenarios.Small)
	rec := httptest.NewRecorder()
	hreq := httptest.NewRequest("POST", "/scenarios/SDN1/diagnose", nil).WithContext(ctx)
	srv.Handler().ServeHTTP(rec, hreq)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled diagnosis status = %d (%s), want 503", rec.Code, rec.Body)
	}
}

// TestConcurrentDiagnoses is the determinism stress test: N parallel
// diagnoses of the same scenarios on one server must all succeed and
// return byte-identical changes lists — parallel requests must not
// perturb the deterministic replay engine.
func TestConcurrentDiagnoses(t *testing.T) {
	const n = 16
	ts := testServer(t, WithWorkers(n))
	type result struct {
		name string
		body []byte
		err  error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			name := []string{"SDN1", "SDN2", "MR1-D", "MR2-I"}[i%4]
			resp, err := http.Post(ts.URL+"/scenarios/"+name+"/diagnose", "application/json", nil)
			if err != nil {
				results <- result{name: name, err: err}
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
			}
			results <- result{name: name, body: body, err: err}
		}(i)
	}
	changesBy := map[string][]byte{}
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		var d struct {
			Changes []string `json:"changes"`
		}
		if err := json.Unmarshal(r.body, &d); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(d.Changes) == 0 {
			t.Fatalf("%s: empty changes", r.name)
		}
		enc, _ := json.Marshal(d.Changes)
		if prev, ok := changesBy[r.name]; ok {
			if !bytes.Equal(prev, enc) {
				t.Errorf("%s: concurrent diagnoses disagree:\n%s\nvs\n%s", r.name, prev, enc)
			}
		} else {
			changesBy[r.name] = enc
		}
	}
}

// TestDataDirRestartRecovery is the diffprovd kill-and-restart path: a
// server with -data-dir records scenario logs and checkpoints into the
// segmented store; a second server over the same directory (the restart)
// recovers them — re-driving the deterministic build against the stored
// prefix instead of re-recording — and returns an identical diagnosis.
func TestDataDirRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	ts1 := testServer(t, WithWorkers(2), WithDataDir(dir))
	code, body1 := post(t, ts1.URL+"/scenarios/SDN1/diagnose")
	if code != http.StatusOK {
		t.Fatalf("first diagnose: %d: %s", code, body1)
	}
	ts1.Close()

	// The store must actually hold segments for the scenario.
	segs, err := filepath.Glob(filepath.Join(dir, "SDN1", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments under the data dir: %v", err)
	}

	// Restart: fresh server, same data dir.
	ts2 := testServer(t, WithWorkers(2), WithDataDir(dir))
	code, body2 := post(t, ts2.URL+"/scenarios/SDN1/diagnose")
	if code != http.StatusOK {
		t.Fatalf("post-restart diagnose: %d: %s", code, body2)
	}

	// Identical diagnoses, field for field (timings excluded).
	type diag struct {
		Changes []json.RawMessage `json:"changes"`
		Rounds  int               `json:"rounds"`
	}
	var d1, d2 diag
	if err := json.Unmarshal(body1, &d1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &d2); err != nil {
		t.Fatal(err)
	}
	if d1.Rounds != d2.Rounds || len(d1.Changes) != len(d2.Changes) {
		t.Fatalf("diagnoses differ after restart:\n%s\nvs\n%s", body1, body2)
	}
	for i := range d1.Changes {
		if string(d1.Changes[i]) != string(d2.Changes[i]) {
			t.Fatalf("change %d differs after restart: %s vs %s", i, d1.Changes[i], d2.Changes[i])
		}
	}
}
