package treediff

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

func leaf(l string) *Node { return &Node{Label: l} }

func tree(l string, children ...*Node) *Node {
	return &Node{Label: l, Children: children}
}

func TestEditDistanceBasics(t *testing.T) {
	tests := []struct {
		name   string
		t1, t2 *Node
		want   int
	}{
		{"identical leaves", leaf("a"), leaf("a"), 0},
		{"rename", leaf("a"), leaf("b"), 1},
		{"insert child", leaf("a"), tree("a", leaf("b")), 1},
		{"delete child", tree("a", leaf("b")), leaf("a"), 1},
		{"identical trees", tree("a", leaf("b"), leaf("c")), tree("a", leaf("b"), leaf("c")), 0},
		{"swap labels", tree("a", leaf("b"), leaf("c")), tree("a", leaf("c"), leaf("b")), 2},
		{"empty vs tree", nil, tree("a", leaf("b")), 2},
		{"tree vs empty", tree("a", leaf("b")), nil, 2},
		{"both empty", nil, nil, 0},
		{
			"classic zhang-shasha example",
			tree("f", tree("d", leaf("a"), tree("c", leaf("b"))), leaf("e")),
			tree("f", tree("c", tree("d", leaf("a"), leaf("b"))), leaf("e")),
			2,
		},
	}
	for _, tc := range tests {
		if got := EditDistance(tc.t1, tc.t2); got != tc.want {
			t.Errorf("%s: distance = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func randomTree(r *rand.Rand, depth int) *Node {
	n := leaf(string(rune('a' + r.Intn(6))))
	if depth > 0 {
		k := r.Intn(3)
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, randomTree(r, depth-1))
		}
	}
	return n
}

func TestEditDistanceMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	trees := make([]*Node, 12)
	for i := range trees {
		trees[i] = randomTree(r, 3)
	}
	for _, a := range trees {
		if EditDistance(a, a) != 0 {
			t.Fatal("identity: d(a,a) must be 0")
		}
		for _, b := range trees {
			dab := EditDistance(a, b)
			dba := EditDistance(b, a)
			if dab != dba {
				t.Fatalf("symmetry violated: %d vs %d", dab, dba)
			}
			if dab < 0 {
				t.Fatal("distance must be non-negative")
			}
			// Distance is bounded by total size (delete all + insert all).
			if dab > a.Size()+b.Size() {
				t.Fatalf("distance %d exceeds size bound %d", dab, a.Size()+b.Size())
			}
			for _, c := range trees {
				if EditDistance(a, c) > dab+EditDistance(b, c) {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

func TestEditDistanceDeepChain(t *testing.T) {
	// A degenerate chain exercises the keyroot decomposition.
	var chain func(n int) *Node
	chain = func(n int) *Node {
		if n == 0 {
			return leaf("x")
		}
		return tree("x", chain(n-1))
	}
	if got := EditDistance(chain(20), chain(25)); got != 5 {
		t.Errorf("chain distance = %d, want 5", got)
	}
}

// buildTrees runs the SDN1-like scenario and returns good/bad trees.
func buildTrees(t *testing.T) (*provenance.Tree, *provenance.Tree) {
	t.Helper()
	prog := ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	s := replay.NewSession(prog)
	fe := func(prio int64, match, nxt string) ndlog.Tuple {
		return ndlog.NewTuple("flowEntry", ndlog.Int(prio), ndlog.MustParsePrefix(match), ndlog.Str(nxt))
	}
	s.Insert("s1", fe(1, "0.0.0.0/0", "s2"), 0)
	s.Insert("s2", fe(10, "4.3.2.0/24", "s6"), 0)
	s.Insert("s2", fe(1, "0.0.0.0/0", "s3"), 0)
	s.Insert("s6", fe(1, "0.0.0.0/0", "web1"), 0)
	s.Insert("s3", fe(1, "0.0.0.0/0", "web2"), 0)
	s.Insert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")), 10)
	s.Insert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1")), 20)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := g.Tree(g.LastAppear("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))).ID)
	bad := g.Tree(g.LastAppear("web2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))).ID)
	return good, bad
}

func TestPlainDiffOnProvenance(t *testing.T) {
	good, bad := buildTrees(t)
	diff := PlainDiff(good, bad)
	if diff == 0 {
		t.Fatal("trees of differently-routed packets must differ")
	}
	// The butterfly effect (§2.5): even though the root cause is a single
	// flow entry, the plain diff is large — a significant fraction of the
	// trees themselves.
	if diff < good.Size()/2 {
		t.Errorf("plain diff = %d; expected the butterfly effect to make it large (trees %d/%d)",
			diff, good.Size(), bad.Size())
	}
	if PlainDiff(good, good) != 0 {
		t.Error("self-diff must be 0")
	}
	// Symmetry.
	if PlainDiff(good, bad) != PlainDiff(bad, good) {
		t.Error("plain diff must be symmetric")
	}
}

func TestSharedVertexes(t *testing.T) {
	good, bad := buildTrees(t)
	shared := SharedVertexes(good, bad)
	if shared == 0 {
		t.Error("the trees share at least the s1 hop's flow entry subtree")
	}
	if shared != SharedVertexes(bad, good) {
		t.Error("shared count must be symmetric")
	}
	if got := SharedVertexes(good, good); got != good.Size() {
		t.Errorf("self-shared = %d, want %d", got, good.Size())
	}
	// shared + diff = total
	if 2*shared+PlainDiff(good, bad) != good.Size()+bad.Size() {
		t.Error("2*shared + diff must equal total vertexes")
	}
}

// bruteDiff and bruteShared are the unpruned §2.5 baselines, computed
// straight from the label multisets; the fingerprint-pruned versions must
// agree with them exactly.
func bruteDiff(a, b *provenance.Tree) int {
	la, lb := a.Labels(), b.Labels()
	diff := 0
	for label, ca := range la {
		if cb := lb[label]; ca > cb {
			diff += ca - cb
		}
	}
	for label, cb := range lb {
		if ca := la[label]; cb > ca {
			diff += cb - ca
		}
	}
	return diff
}

func bruteShared(a, b *provenance.Tree) int {
	la, lb := a.Labels(), b.Labels()
	shared := 0
	for label, ca := range la {
		if cb := lb[label]; cb < ca {
			shared += cb
		} else {
			shared += ca
		}
	}
	return shared
}

func TestPrunedDiffMatchesBruteForce(t *testing.T) {
	good, bad := buildTrees(t)
	pairs := [][2]*provenance.Tree{
		{good, bad}, {bad, good}, {good, good}, {bad, bad},
		{good, good.Children[0]}, {good.Children[0], bad},
	}
	for _, p := range pairs {
		if got, want := PlainDiff(p[0], p[1]), bruteDiff(p[0], p[1]); got != want {
			t.Errorf("PlainDiff = %d, brute force = %d", got, want)
		}
		if got, want := SharedVertexes(p[0], p[1]), bruteShared(p[0], p[1]); got != want {
			t.Errorf("SharedVertexes = %d, brute force = %d", got, want)
		}
	}
}

// TestEditDistanceAllocations pins the fd-buffer hoist: the forest
// distance matrix is allocated once per call, not once per keyroot pair.
// The bushy trees below have 24 keyroots each (576 pairs); the per-pair
// allocator this replaces could not stay under that count.
func TestEditDistanceAllocations(t *testing.T) {
	bushy := func(l string) *Node {
		n := &Node{Label: l}
		for i := 0; i < 24; i++ {
			n.Children = append(n.Children, leaf(string(rune('a'+i%6))))
		}
		return n
	}
	t1, t2 := bushy("p"), bushy("q")
	if got := EditDistance(t1, t2); got != 1 {
		t.Fatalf("distance = %d, want 1 (rename of the root)", got)
	}
	allocs := testing.AllocsPerRun(10, func() { EditDistance(t1, t2) })
	if pairs := 24 * 24; allocs >= float64(pairs) {
		t.Errorf("EditDistance allocates %.0f objects, want fewer than the %d keyroot pairs", allocs, pairs)
	}
}

// TestFromProvenanceDeterministic builds the same execution twice from
// independently-recorded graphs and requires identical Node
// serializations — fingerprints included, which makes any instability in
// child ordering observable.
func TestFromProvenanceDeterministic(t *testing.T) {
	var serialize func(n *Node) string
	serialize = func(n *Node) string {
		s := fmt.Sprintf("%s#%016x{", n.Label, n.FP)
		for _, c := range n.Children {
			s += serialize(c) + ","
		}
		return s + "}"
	}
	goodA, badA := buildTrees(t)
	goodB, badB := buildTrees(t)
	if sa, sb := serialize(FromProvenance(goodA)), serialize(FromProvenance(goodB)); sa != sb {
		t.Errorf("good-tree serialization unstable:\n%s\nvs\n%s", sa, sb)
	}
	if sa, sb := serialize(FromProvenance(badA)), serialize(FromProvenance(badB)); sa != sb {
		t.Errorf("bad-tree serialization unstable:\n%s\nvs\n%s", sa, sb)
	}
	if FromProvenance(goodA).FP != goodA.Fingerprint() {
		t.Error("FromProvenance must carry the tree fingerprint")
	}
	// Structurally identical trees from independent recordings hash equal,
	// so the edit-distance fast path fires and reports 0.
	if d := EditDistance(FromProvenance(goodA), FromProvenance(goodB)); d != 0 {
		t.Errorf("independently recorded identical trees: distance %d, want 0", d)
	}
}

func TestFromProvenance(t *testing.T) {
	good, _ := buildTrees(t)
	n := FromProvenance(good)
	if n.Size() != good.Size() {
		t.Errorf("converted size = %d, want %d", n.Size(), good.Size())
	}
	if FromProvenance(nil) != nil {
		t.Error("nil tree converts to nil")
	}
}

func TestEditDistanceOnProvenance(t *testing.T) {
	good, bad := buildTrees(t)
	d := EditDistance(FromProvenance(good), FromProvenance(bad))
	if d == 0 {
		t.Fatal("edit distance of differently-routed packets must be positive")
	}
	// Even the optimal tree alignment reports many differences — far more
	// than the single-vertex root cause.
	if d < 3 {
		t.Errorf("edit distance = %d; expected the butterfly effect to inflate it", d)
	}
}
