// Package treediff implements the strawman tree-comparison baselines of
// §2.5: a plain vertex-multiset diff and the Zhang–Shasha ordered tree
// edit distance. The paper shows these perform poorly on provenance
// trees — the diff of the two SDN1 trees has more vertexes than either
// tree — which is precisely what motivates differential provenance.
//
// Both baselines use the structural fingerprints cached on provenance
// vertexes to prune identical subtrees in O(1): a fingerprint-equal pair
// of subtrees is structurally identical, so it contributes nothing to a
// symmetric difference and its full size to the shared count. The pruned
// results are exactly the unpruned ones (modulo 2^-64 hash collisions).
package treediff

import (
	"sort"

	"repro/internal/provenance"
)

// labelsPruned expands the two trees into label multisets, first pairing
// off fingerprint-equal subtrees across the two frontiers level by level.
// Each pruned pair is skipped entirely: symmetric differences and
// min-intersections are invariant under removing equal submultisets from
// both sides, so the pair contributes its size to shared and nothing to
// the multisets.
func labelsPruned(a, b *provenance.Tree) (la, lb map[string]int, shared int) {
	la, lb = map[string]int{}, map[string]int{}
	var qa, qb []*provenance.Tree
	if a != nil {
		qa = append(qa, a)
	}
	if b != nil {
		qb = append(qb, b)
	}
	for len(qa) > 0 && len(qb) > 0 {
		byFP := make(map[uint64][]int, len(qb))
		for i, t := range qb {
			byFP[t.Fingerprint()] = append(byFP[t.Fingerprint()], i)
		}
		usedB := make([]bool, len(qb))
		var nextA []*provenance.Tree
		for _, t := range qa {
			if idxs := byFP[t.Fingerprint()]; len(idxs) > 0 {
				byFP[t.Fingerprint()] = idxs[1:]
				usedB[idxs[0]] = true
				shared += t.Size()
				continue
			}
			la[t.Vertex.Label()]++
			nextA = append(nextA, t.Children...)
		}
		var nextB []*provenance.Tree
		for j, t := range qb {
			if usedB[j] {
				continue
			}
			lb[t.Vertex.Label()]++
			nextB = append(nextB, t.Children...)
		}
		qa, qb = nextA, nextB
	}
	for _, t := range qa {
		t.Walk(func(n *provenance.Tree) { la[n.Vertex.Label()]++ })
	}
	for _, t := range qb {
		t.Walk(func(n *provenance.Tree) { lb[n.Vertex.Label()]++ })
	}
	return la, lb, shared
}

// PlainDiff counts the vertexes in the symmetric difference of the two
// trees' label multisets: the naive "compare the trees vertex by vertex
// and pick out the different ones" baseline. Labels ignore timestamps
// (an equivalence relation masking irrelevant detail, per §2.5) but keep
// headers, nodes, and rules — which is why small routing changes blow the
// diff up.
func PlainDiff(a, b *provenance.Tree) int {
	la, lb, _ := labelsPruned(a, b)
	diff := 0
	for label, ca := range la {
		cb := lb[label]
		if ca > cb {
			diff += ca - cb
		}
	}
	for label, cb := range lb {
		ca := la[label]
		if cb > ca {
			diff += cb - ca
		}
	}
	return diff
}

// SharedVertexes counts label-equal vertexes present in both trees (the
// green vertexes of Figure 2).
func SharedVertexes(a, b *provenance.Tree) int {
	la, lb, shared := labelsPruned(a, b)
	for label, ca := range la {
		if cb := lb[label]; cb < ca {
			shared += cb
		} else {
			shared += ca
		}
	}
	return shared
}

// Node is the minimal ordered labeled tree the edit-distance algorithm
// operates on.
type Node struct {
	Label    string
	Children []*Node
	// FP is the structural fingerprint carried over from the provenance
	// tree; 0 for hand-built nodes, which disables the fingerprint fast
	// paths.
	FP uint64
}

// FromProvenance converts a provenance tree into an ordered labeled tree,
// carrying the structural fingerprint over.
func FromProvenance(t *provenance.Tree) *Node {
	if t == nil {
		return nil
	}
	n := &Node{Label: t.Vertex.Label(), FP: t.Fingerprint()}
	for _, c := range t.Children {
		n.Children = append(n.Children, FromProvenance(c))
	}
	return n
}

// Size returns the number of nodes in the tree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// EditDistance computes the Zhang–Shasha tree edit distance between two
// ordered labeled trees with unit costs for insert, delete, and rename.
// This is the classical algorithm the paper cites ([5], Bille's survey):
// O(n1*n2*min(depth1, leaves1)*min(depth2, leaves2)) time.
//
// Fingerprint-equal trees short-circuit to 0 (structural identity). Note
// that only the whole-tree comparison can use the fast path: pruning
// equal subtrees from the middle of an ordered forest does not preserve
// Zhang–Shasha distances.
func EditDistance(t1, t2 *Node) int {
	if t1 != nil && t2 != nil && t1.FP != 0 && t1.FP == t2.FP {
		return 0
	}
	a := newOrdered(t1)
	b := newOrdered(t2)
	if a.n == 0 {
		return b.n
	}
	if b.n == 0 {
		return a.n
	}
	td := make([][]int, a.n+1)
	tdBack := make([]int, (a.n+1)*(b.n+1))
	for i := range td {
		td[i] = tdBack[i*(b.n+1) : (i+1)*(b.n+1)]
	}
	// One forest-distance buffer, sized to the whole trees and reused
	// across keyroot pairs: treeDist fully rewrites the prefix it uses.
	fd := make([][]int, a.n+1)
	fdBack := make([]int, (a.n+1)*(b.n+1))
	for i := range fd {
		fd[i] = fdBack[i*(b.n+1) : (i+1)*(b.n+1)]
	}
	for _, i := range a.keyRoots {
		for _, j := range b.keyRoots {
			treeDist(a, b, i, j, td, fd)
		}
	}
	return td[a.n][b.n]
}

// ordered holds the postorder decomposition used by Zhang–Shasha.
type ordered struct {
	n        int
	labels   []string // 1-based postorder labels
	lmld     []int    // leftmost leaf descendant per postorder index
	keyRoots []int
}

func newOrdered(t *Node) *ordered {
	o := &ordered{}
	if t == nil {
		return o
	}
	o.labels = append(o.labels, "") // 1-based
	o.lmld = append(o.lmld, 0)
	var walk func(n *Node) int // returns postorder index of n
	var leftmost func(n *Node) *Node
	leftmost = func(n *Node) *Node {
		for len(n.Children) > 0 {
			n = n.Children[0]
		}
		return n
	}
	lmOf := map[*Node]int{}
	walk = func(n *Node) int {
		for _, c := range n.Children {
			walk(c)
		}
		o.n++
		idx := o.n
		o.labels = append(o.labels, n.Label)
		lm := leftmost(n)
		lmIdx, ok := lmOf[lm]
		if !ok {
			lmIdx = idx // n is itself a leaf
		}
		lmOf[n] = lmIdx
		o.lmld = append(o.lmld, lmIdx)
		return idx
	}
	walk(t)
	// Key roots: nodes with no left sibling sharing their leftmost leaf —
	// the largest postorder index per distinct leftmost-leaf value.
	last := map[int]int{}
	for i := 1; i <= o.n; i++ {
		last[o.lmld[i]] = i
	}
	for _, i := range last {
		o.keyRoots = append(o.keyRoots, i)
	}
	sort.Ints(o.keyRoots)
	return o
}

// treeDist fills td for the keyroot pair (i, j), scribbling over the
// caller-provided fd buffer; every cell of the prefix it reads is written
// first, so reuse across calls is safe.
func treeDist(a, b *ordered, i, j int, td, fd [][]int) {
	li := a.lmld[i]
	lj := b.lmld[j]
	m := i - li + 2
	n := j - lj + 2
	fd[0][0] = 0
	for x := 1; x < m; x++ {
		fd[x][0] = fd[x-1][0] + 1 // delete
	}
	for y := 1; y < n; y++ {
		fd[0][y] = fd[0][y-1] + 1 // insert
	}
	for x := 1; x < m; x++ {
		for y := 1; y < n; y++ {
			iIdx := li + x - 1
			jIdx := lj + y - 1
			if a.lmld[iIdx] == li && b.lmld[jIdx] == lj {
				rename := 0
				if a.labels[iIdx] != b.labels[jIdx] {
					rename = 1
				}
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[x-1][y-1]+rename,
				)
				td[iIdx][jIdx] = fd[x][y]
			} else {
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[a.lmld[iIdx]-li][b.lmld[jIdx]-lj]+td[iIdx][jIdx],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
