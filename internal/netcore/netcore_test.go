package netcore

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/sdn"
)

const figure1Policy = `
// Figure 1: untrusted subnets via the DPI path.
policy untrusted priority 10 {
    match src in 4.3.2.0/24;   // the operator's typo: should be /23
    route web1;
}

policy default priority 1 {
    route web2;
}

mirror at s6 {
    match src in 0.0.0.0/0;
    to dpi;
}
`

func TestParseFigure1Policy(t *testing.T) {
	p, err := Parse(figure1Policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Policies) != 2 {
		t.Fatalf("policies = %d, want 2", len(p.Policies))
	}
	u := p.Policies[0]
	if u.Name != "untrusted" || u.Priority != 10 || u.Route != "web1" {
		t.Errorf("policy = %+v", u)
	}
	if u.Src != ndlog.MustParsePrefix("4.3.2.0/24") {
		t.Errorf("src = %v", u.Src)
	}
	if u.Dst != sdn.Any {
		t.Errorf("dst should default to any, got %v", u.Dst)
	}
	if len(p.Mirrors) != 1 || p.Mirrors[0].Switch != "s6" || p.Mirrors[0].To != "dpi" {
		t.Errorf("mirror = %+v", p.Mirrors)
	}
}

func TestCompileToTuples(t *testing.T) {
	p := MustParse(figure1Policy)
	it := p.Policies[0].Intent()
	if it.Table != "intent" || it.Args[0] != ndlog.Int(10) {
		t.Errorf("intent tuple = %s", it)
	}
	mt := p.Mirrors[0].Tuple()
	if mt.Table != "mirrorIntent" || mt.Args[0] != ndlog.Str("s6") {
		t.Errorf("mirror tuple = %s", mt)
	}
}

func TestInstallDrivesNetwork(t *testing.T) {
	n := sdn.NewNetwork()
	for _, sw := range []string{"s1", "s2", "s6", "s3"} {
		if err := n.SwitchUp(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddPath("web1", "s1", "s2", "s6", "web1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPath("web2", "s1", "s2", "s3", "web2"); err != nil {
		t.Fatal(err)
	}
	if err := MustParse(figure1Policy).Install(n); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	h := sdn.Header{Src: ndlog.MustParseIP("4.3.2.1"), Dst: ndlog.MustParseIP("10.0.0.80"), Proto: 6}
	if _, err := n.InjectPacket("s1", h); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Arrived("web1", h) {
		t.Error("policy-routed packet must reach web1")
	}
	if !n.Arrived("dpi", h) {
		t.Error("mirror statement must tap the DPI")
	}
}

func TestParseDstMatch(t *testing.T) {
	p, err := Parse(`policy x priority 5 { match dst in 10.0.0.0/8; route h; }`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Policies[0].Dst != ndlog.MustParsePrefix("10.0.0.0/8") {
		t.Errorf("dst = %v", p.Policies[0].Dst)
	}
	if p.Policies[0].Src != sdn.Any {
		t.Errorf("src should default")
	}
}

func TestParseMirrorDstMatch(t *testing.T) {
	p, err := Parse(`mirror at s1 { match dst in 10.0.0.0/8; to ids; }`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mirrors[0].Dst != ndlog.MustParsePrefix("10.0.0.0/8") {
		t.Errorf("dst = %v", p.Mirrors[0].Dst)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`frobnicate x {}`,                                            // unknown statement
		`policy { route h; }`,                                        // no name
		`policy x priority { route h; }`,                             // missing priority value
		`policy x priority abc { route h; }`,                         // bad priority
		`policy x priority 1 { route h; }; extra`,                    // trailing garbage
		`policy x priority 1 { match src in bad; route h; }`,         // bad prefix
		`policy x priority 1 { match port in 10.0.0.0/8; route h; }`, // bad field
		`policy x priority 1 { }`,                                    // no route
		`policy x priority 1 { route h }`,                            // missing semicolon
		`policy x priority 1 { jump h; }`,                            // unknown clause
		`mirror at s1 { match src in 0.0.0.0/0; }`,                   // no to
		`mirror s1 { to x; }`,                                        // missing at
		`policy x priority 1 { route ; }`,                            // empty route
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorsMentionLine(t *testing.T) {
	_, err := Parse("policy ok priority 1 { route h; }\npolicy bad priority zzz { route h; }")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should mention line 2: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse("garbage !")
}

func TestDropPolicy(t *testing.T) {
	p, err := Parse(`
policy block priority 30 {
    match src in 66.66.0.0/16;
    drop;
}
policy default priority 1 {
    route h;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Policies[0].Drop || p.Policies[0].Route != Blackhole {
		t.Errorf("drop policy = %+v", p.Policies[0])
	}
	n := sdn.NewNetwork()
	if err := n.SwitchUp("s1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPath("h", "s1", "h"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPath(Blackhole, "s1", Blackhole); err != nil {
		t.Fatal(err)
	}
	if err := p.Install(n); err != nil {
		t.Fatal(err)
	}
	bad := sdn.Header{Src: ndlog.MustParseIP("66.66.1.1"), Dst: ndlog.MustParseIP("1.1.1.1"), Proto: 6}
	good := sdn.Header{Src: ndlog.MustParseIP("8.8.8.8"), Dst: ndlog.MustParseIP("1.1.1.1"), Proto: 6}
	if _, err := n.InjectPacket("s1", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InjectPacket("s1", good); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Arrived(Blackhole, bad) {
		t.Error("blocked traffic must be dropped")
	}
	if !n.Arrived("h", good) {
		t.Error("ordinary traffic must pass")
	}
}
