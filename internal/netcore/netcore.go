// Package netcore is the controller-program front-end of the DiffProv
// prototype (§5): it accepts SDN policies written in a small NetCore /
// Pyretic-style language and compiles them into the NDlog model's intent
// and mirror tuples, so imperative controller programs enjoy the same
// provenance as native NDlog.
//
// The language:
//
//	// comments
//	policy untrusted priority 10 {
//	    match src in 4.3.2.0/23;
//	    match dst in 0.0.0.0/0;    // optional; defaults to any
//	    route web1;
//	}
//
//	mirror at s6 {
//	    match src in 0.0.0.0/0;
//	    to dpi;
//	}
//
//	// ACL-style drop: matched traffic is sent to the blackhole.
//	policy blockbad priority 30 {
//	    match src in 66.66.0.0/16;
//	    drop;
//	}
package netcore

import (
	"fmt"
	"strings"

	"repro/internal/ndlog"
	"repro/internal/sdn"
)

// Blackhole is the destination compiled for "drop" policies.
const Blackhole = "blackhole"

// Policy is a compiled routing policy.
type Policy struct {
	Name     string
	Priority int64
	Src, Dst ndlog.Prefix
	Route    string
	Drop     bool
}

// Intent returns the NDlog intent tuple the policy compiles to.
func (p Policy) Intent() ndlog.Tuple {
	return ndlog.NewTuple("intent", ndlog.Int(p.Priority), p.Src, p.Dst, ndlog.Str(p.Route))
}

// Mirror is a compiled mirroring statement.
type Mirror struct {
	Switch   string
	Src, Dst ndlog.Prefix
	To       string
}

// Tuple returns the NDlog mirrorIntent tuple.
func (m Mirror) Tuple() ndlog.Tuple {
	return ndlog.NewTuple("mirrorIntent", ndlog.Str(m.Switch), m.Src, m.Dst, ndlog.Str(m.To))
}

// Program is a parsed NetCore program.
type Program struct {
	Policies []Policy
	Mirrors  []Mirror
}

// Install applies the program to a network (the front-end conversion
// "from NetCore to NDlog rules and tuples", §5).
func (p *Program) Install(n *sdn.Network) error {
	for _, pol := range p.Policies {
		if err := n.AddIntent(pol.Priority, pol.Src, pol.Dst, pol.Route); err != nil {
			return err
		}
	}
	for _, m := range p.Mirrors {
		if err := n.AddMirror(m.Switch, m.Src, m.Dst, m.To); err != nil {
			return err
		}
	}
	return nil
}

type parser struct {
	toks []string
	pos  int
	line []int
}

// Parse compiles NetCore source.
func Parse(src string) (*Program, error) {
	p := &parser{}
	lineNo := 0
	for _, line := range strings.Split(src, "\n") {
		lineNo++
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		// Make punctuation self-delimiting.
		for _, c := range []string{"{", "}", ";"} {
			line = strings.ReplaceAll(line, c, " "+c+" ")
		}
		for _, f := range strings.Fields(line) {
			p.toks = append(p.toks, f)
			p.line = append(p.line, lineNo)
		}
	}
	prog := &Program{}
	for !p.done() {
		switch p.peek() {
		case "policy":
			pol, err := p.parsePolicy()
			if err != nil {
				return nil, err
			}
			prog.Policies = append(prog.Policies, pol)
		case "mirror":
			m, err := p.parseMirror()
			if err != nil {
				return nil, err
			}
			prog.Mirrors = append(prog.Mirrors, m)
		default:
			return nil, p.errf("expected 'policy' or 'mirror', got %q", p.peek())
		}
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	if !p.done() {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	ln := 0
	if p.pos < len(p.line) {
		ln = p.line[p.pos]
	} else if len(p.line) > 0 {
		ln = p.line[len(p.line)-1]
	}
	return fmt.Errorf("netcore: line %d: %s", ln, fmt.Sprintf(format, args...))
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		p.pos--
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) parsePolicy() (Policy, error) {
	p.next() // "policy"
	pol := Policy{Src: sdn.Any, Dst: sdn.Any}
	pol.Name = p.next()
	if pol.Name == "" || pol.Name == "{" {
		return pol, p.errf("policy needs a name")
	}
	if err := p.expect("priority"); err != nil {
		return pol, err
	}
	v, err := ndlog.ParseValue(p.next())
	if err != nil {
		return pol, p.errf("bad priority: %v", err)
	}
	prio, ok := v.(ndlog.Int)
	if !ok {
		return pol, p.errf("priority must be an integer")
	}
	pol.Priority = int64(prio)
	if err := p.expect("{"); err != nil {
		return pol, err
	}
	for p.peek() != "}" && !p.done() {
		switch p.peek() {
		case "match":
			p.next()
			field := p.next()
			if err := p.expect("in"); err != nil {
				return pol, err
			}
			pfx, err := ndlog.ParsePrefix(p.next())
			if err != nil {
				return pol, p.errf("bad prefix: %v", err)
			}
			switch field {
			case "src":
				pol.Src = pfx
			case "dst":
				pol.Dst = pfx
			default:
				return pol, p.errf("match field must be src or dst, got %q", field)
			}
		case "route":
			p.next()
			pol.Route = p.next()
			if pol.Route == "" || pol.Route == ";" {
				return pol, p.errf("route needs a destination host")
			}
		case "drop":
			p.next()
			pol.Drop = true
			pol.Route = Blackhole
		default:
			return pol, p.errf("expected 'match' or 'route', got %q", p.peek())
		}
		if err := p.expect(";"); err != nil {
			return pol, err
		}
	}
	if err := p.expect("}"); err != nil {
		return pol, err
	}
	if pol.Route == "" {
		return pol, fmt.Errorf("netcore: policy %s has no route or drop clause", pol.Name)
	}
	return pol, nil
}

func (p *parser) parseMirror() (Mirror, error) {
	p.next() // "mirror"
	m := Mirror{Src: sdn.Any, Dst: sdn.Any}
	if err := p.expect("at"); err != nil {
		return m, err
	}
	m.Switch = p.next()
	if err := p.expect("{"); err != nil {
		return m, err
	}
	for p.peek() != "}" && !p.done() {
		switch p.peek() {
		case "match":
			p.next()
			field := p.next()
			if err := p.expect("in"); err != nil {
				return m, err
			}
			pfx, err := ndlog.ParsePrefix(p.next())
			if err != nil {
				return m, p.errf("bad prefix: %v", err)
			}
			switch field {
			case "src":
				m.Src = pfx
			case "dst":
				m.Dst = pfx
			default:
				return m, p.errf("match field must be src or dst, got %q", field)
			}
		case "to":
			p.next()
			m.To = p.next()
		default:
			return m, p.errf("expected 'match' or 'to', got %q", p.peek())
		}
		if err := p.expect(";"); err != nil {
			return m, err
		}
	}
	if err := p.expect("}"); err != nil {
		return m, err
	}
	if m.To == "" {
		return m, fmt.Errorf("netcore: mirror at %s has no 'to' clause", m.Switch)
	}
	return m, nil
}
