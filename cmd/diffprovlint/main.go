// Command diffprovlint runs the repo's custom determinism lints — detnow,
// maprange, appendonly, and sealcheck (see internal/lint) — over Go
// package patterns and exits nonzero on any finding.
//
// Usage:
//
//	diffprovlint [-list] [packages]
//
// With no patterns it checks ./... . It is self-contained (stdlib-only
// type checking), so CI can run it without fetching anything.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: diffprovlint [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffprovlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffprovlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
