// Command diffprov is the debugger front-end: it runs the paper's
// diagnostic scenarios, prints provenance trees, and reports differential
// provenance diagnoses.
//
// Usage:
//
//	diffprov scenarios                 list the case studies
//	diffprov run <scenario>            diagnose a scenario (e.g. SDN1)
//	diffprov tree <scenario> good|bad  print a provenance tree
//	diffprov stanford [flags]          run the §6.7 complex-network case
//	diffprov refcheck                  run the unsuitable-reference checks
//	diffprov vet [file.ndlog ...]      statically check NDlog programs
//	diffprov slice <file> <table>      print the static slice of a symptom table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/evaluation"
	"repro/internal/failures"
	"repro/internal/scenarios"
	"repro/internal/treediff"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "scenarios":
		err = listScenarios()
	case "run":
		err = runScenario(os.Args[2:])
	case "tree":
		err = printTree(os.Args[2:])
	case "stanford":
		err = runStanford(os.Args[2:])
	case "refcheck":
		err = runRefCheck()
	case "autoref":
		err = runAutoRef(os.Args[2:])
	case "dot":
		err = printDOT(os.Args[2:])
	case "explain":
		err = explainTree(os.Args[2:])
	case "failures":
		err = runFailures()
	case "vet":
		err = runVet(os.Args[2:])
	case "slice":
		err = runSlice(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "diffprov: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffprov: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  diffprov scenarios                 list the case studies
  diffprov run <scenario>            diagnose a scenario (e.g. SDN1)
  diffprov tree <scenario> good|bad  print a provenance tree
  diffprov stanford [flags]          run the complex-network case study
  diffprov refcheck                  run the unsuitable-reference checks
  diffprov autoref <scenario>        diagnose without a reference (mined, §4.9)
  diffprov dot <scenario> good|bad   render a provenance tree in Graphviz DOT
  diffprov explain <scenario> good|bad  narrate a tree's trigger chain
  diffprov failures                  diagnose the §2.3 failure taxonomy
  diffprov vet [-strict] [file...]   check NDlog programs (built-ins when no files)
  diffprov slice <file> <table>      print the static slice of a symptom table
`)
}

func listScenarios() error {
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scenarios.Small)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %s\n", s.Name, s.Description)
	}
	return nil
}

func runScenario(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: diffprov run <scenario>")
	}
	s, err := scenarios.Build(args[0], scenarios.Small)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s\n  %s\n\n", s.Name, s.Description)
	fmt.Printf("good tree: %d vertexes\n", s.Good.Size())
	fmt.Printf("bad tree:  %d vertexes\n", s.Bad.Size())
	fmt.Printf("plain diff (§2.5 strawman): %d vertexes\n\n", treediff.PlainDiff(s.Good, s.Bad))

	res, err := s.Diagnose()
	if err != nil {
		return fmt.Errorf("diagnosis failed: %v", err)
	}
	fmt.Printf("differential provenance Δ(B→G) — the estimated root cause:\n")
	for _, c := range res.Changes {
		fmt.Printf("  %s\n", c)
	}
	fmt.Printf("\nrounds: %d, iterations: %d\n", len(res.Rounds), res.Iterations)
	fmt.Printf("reasoning: seed %v, divergence %v, make-appear %v; tree updates %v\n",
		res.Timings.FindSeed, res.Timings.Divergence, res.Timings.MakeAppear, res.Timings.UpdateTree)
	if s.Check != nil {
		if err := s.Check(res); err != nil {
			return fmt.Errorf("root-cause check failed: %v", err)
		}
		fmt.Println("root cause verified against the known fault ✓")
	}
	return nil
}

func printTree(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: diffprov tree <scenario> good|bad")
	}
	s, err := scenarios.Build(args[0], scenarios.Small)
	if err != nil {
		return err
	}
	switch strings.ToLower(args[1]) {
	case "good":
		fmt.Print(s.Good.String())
	case "bad":
		fmt.Print(s.Bad.String())
	default:
		return fmt.Errorf("want good or bad, got %q", args[1])
	}
	return nil
}

func explainTree(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: diffprov explain <scenario> good|bad")
	}
	s, err := scenarios.Build(args[0], scenarios.Small)
	if err != nil {
		return err
	}
	tree := s.Good
	if strings.ToLower(args[1]) == "bad" {
		tree = s.Bad
	}
	fmt.Print(tree.Explain())
	return nil
}

func printDOT(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: diffprov dot <scenario> good|bad")
	}
	s, err := scenarios.Build(args[0], scenarios.Small)
	if err != nil {
		return err
	}
	tree := s.Good
	if strings.ToLower(args[1]) == "bad" {
		tree = s.Bad
	}
	return tree.WriteDOT(os.Stdout, s.Name+"-"+args[1])
}

func runStanford(args []string) error {
	fs := flag.NewFlagSet("stanford", flag.ContinueOnError)
	entries := fs.Int("entries", 2000, "generated forwarding entries (paper: 757000)")
	acls := fs.Int("acls", 100, "generated ACL rules (paper: 1500)")
	faults := fs.Int("faults", 20, "extra injected faults")
	background := fs.Int("background", 300, "background packets")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := evaluation.Stanford(evaluation.StanfordConfig{
		Seed:              *seed,
		ForwardingEntries: *entries,
		ACLRules:          *acls,
		ExtraFaults:       *faults,
		BackgroundPackets: *background,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Stanford backbone (§6.7): %d forwarding entries, %d ACLs, %d extra faults\n",
		*entries, *acls, *faults)
	fmt.Printf("trees: good %d, bad %d vertexes; plain diff %d (paper: 67/75, diff 108)\n",
		res.GoodTree, res.BadTree, res.PlainDiff)
	fmt.Printf("Δ = %d change(s); misconfigured entry found: %v; turnaround %v\n",
		res.Changes, res.FoundFault, res.Turnaround)
	return nil
}

func runAutoRef(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: diffprov autoref <scenario>")
	}
	s, err := scenarios.Build(args[0], scenarios.Small)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s (reference withheld; mining candidates from the execution)\n\n", s.Name)
	res, ref, err := core.AutoDiagnose(context.Background(), s.Bad, s.World, core.Options{})
	if err != nil {
		return err
	}
	refSeed, _ := ref.FindSeed()
	fmt.Printf("mined reference: %s (seed %s)\n", ref.Vertex.Tuple, refSeed.Vertex.Tuple)
	fmt.Println("diagnosis:")
	for _, c := range res.Changes {
		fmt.Printf("  %s\n", c)
	}
	return nil
}

func runFailures() error {
	cases, err := failures.All()
	if err != nil {
		return err
	}
	fmt.Println("the survey's failure classes (§2.3-2.4), each diagnosed:")
	for _, c := range cases {
		res, err := c.Diagnose()
		if err != nil {
			return fmt.Errorf("%s: %v", c.Class, err)
		}
		fmt.Printf("\n%-12s %s\n", c.Class.String()+":", c.Description)
		for _, ch := range res.Changes {
			fmt.Printf("  root cause: %s\n", ch)
		}
	}
	return nil
}

func runRefCheck() error {
	checks, err := scenarios.RandomReferenceChecks(scenarios.Small, 5)
	if err != nil {
		return err
	}
	fmt.Printf("unsuitable-reference queries (§6.3): %d issued, all must fail\n\n", len(checks))
	for _, c := range checks {
		fmt.Printf("%-6s ref=%-60s -> %s\n", c.Scenario, c.Reference, c.Kind)
	}
	return nil
}
