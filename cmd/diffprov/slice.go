package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ndlog"
	"repro/internal/ndlog/analysis"
)

// runSlice implements `diffprov slice [-rules] <file.ndlog|builtin:name>
// <table>`: it prints the static backward slice of a symptom table — the
// tables and rules that can influence it — and the tables the slice
// prunes. This is the same slice core.Diagnose uses to skip fallback
// candidates (see Options.DisableSlicing).
func runSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	showRules := fs.Bool("rules", false, "also print the in-slice rules")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: diffprov slice [-rules] <file.ndlog|%s> <table>", builtinNames())
	}
	src, symptom := fs.Arg(0), fs.Arg(1)

	prog, err := loadProgram(src)
	if err != nil {
		return err
	}
	if prog.Decl(symptom) == nil {
		return fmt.Errorf("table %q is not declared in %s", symptom, src)
	}
	s := ndlog.Slice(prog, symptom)
	fmt.Printf("slice of %s in %s: %d of %d tables\n", symptom, src, len(s.Order), len(prog.Tables()))
	for _, tb := range s.Order {
		fmt.Printf("  %s\n", tb)
	}
	var pruned []string
	for _, tb := range prog.Tables() {
		if !s.Contains(tb) {
			pruned = append(pruned, tb)
		}
	}
	if len(pruned) > 0 {
		fmt.Printf("pruned (no rule path to %s): %s\n", symptom, strings.Join(pruned, ", "))
	}
	if *showRules {
		fmt.Printf("in-slice rules: %d of %d\n", len(s.Rules), len(prog.Rules()))
		for _, r := range s.Rules {
			fmt.Printf("  %s\n", r)
		}
	}
	return nil
}

// loadProgram resolves a slice/vet source argument: a builtin:name from
// the vet table, or a .ndlog file parsed with error recovery (errors
// abort; the slice of a half-parsed program would mislead).
func loadProgram(src string) (*ndlog.Program, error) {
	for _, b := range builtinPrograms {
		if src == b.name {
			return b.prog(), nil
		}
	}
	res, err := analysis.AnalyzeFile(src)
	if err != nil {
		return nil, err
	}
	if res.Errors() > 0 {
		res.Format(os.Stderr)
		return nil, fmt.Errorf("%s: %d error(s); fix them before slicing", src, res.Errors())
	}
	return res.Program, nil
}

func builtinNames() string {
	names := make([]string, len(builtinPrograms))
	for i, b := range builtinPrograms {
		names[i] = b.name
	}
	return strings.Join(names, "|")
}
