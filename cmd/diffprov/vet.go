package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/evaluation"
	"repro/internal/mapreduce"
	"repro/internal/ndlog"
	"repro/internal/ndlog/analysis"
	"repro/internal/sdn"
)

// builtinPrograms lists the embedded NDlog models `diffprov vet` checks
// when no files are given (alongside any files, with -builtin). Every
// Table 1 scenario runs over one of these.
var builtinPrograms = []struct {
	name string
	prog func() *ndlog.Program
}{
	{"builtin:sdn", sdn.Program},
	{"builtin:mapreduce", mapreduce.Program},
	{"builtin:evaluation-forward", evaluation.ForwardProgram},
}

// runVet implements `diffprov vet [-strict] [-builtin] [file.ndlog ...]`:
// the NDlog program checker. With file arguments it analyzes those
// sources; without, it analyzes the built-in scenario models. Exit
// status is nonzero when any error (or, with -strict, any diagnostic at
// all) is reported.
func runVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	strict := fs.Bool("strict", false, "treat warnings as errors")
	builtin := fs.Bool("builtin", false, "also check the built-in scenario programs")
	quiet := fs.Bool("q", false, "suppress per-file OK lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	var results []*analysis.Result
	if len(files) == 0 || *builtin {
		for _, b := range builtinPrograms {
			results = append(results, analysis.AnalyzeProgram(b.name, b.prog()))
		}
	}
	for _, f := range files {
		res, err := analysis.AnalyzeFile(f)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	errors, warnings := 0, 0
	for _, res := range results {
		res.Format(os.Stdout)
		errors += res.Errors()
		warnings += res.Warnings()
		if !*quiet && len(res.Diags) == 0 {
			fmt.Printf("%s: ok\n", res.Name)
		}
	}
	if errors > 0 || (*strict && warnings > 0) {
		return fmt.Errorf("vet: %d error(s), %d warning(s)", errors, warnings)
	}
	return nil
}
