// Command diffprovd serves the DiffProv debugger over HTTP.
//
//	diffprovd -addr :8080 -scale small
//
//	curl localhost:8080/scenarios
//	curl localhost:8080/scenarios/SDN1
//	curl localhost:8080/scenarios/SDN1/tree/bad?format=explain
//	curl -X POST localhost:8080/scenarios/SDN1/diagnose
//	curl -X POST localhost:8080/scenarios/SDN1/autoref
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/scenarios"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	scaleStr := flag.String("scale", "small", "workload scale: small or paper")
	flag.Parse()

	scale := scenarios.Small
	if *scaleStr == "paper" {
		scale = scenarios.Paper
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(scale).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("diffprovd listening on %s (scale=%s)", *addr, *scaleStr)
	log.Fatal(srv.ListenAndServe())
}
