// Command diffprovd serves the DiffProv debugger over HTTP.
//
//	diffprovd -addr :8080 -scale small -workers 8 -parallelism 4 -diagnose-timeout 30s
//
//	curl localhost:8080/scenarios
//	curl localhost:8080/scenarios/SDN1
//	curl localhost:8080/scenarios/SDN1/tree/bad?format=explain
//	curl -X POST localhost:8080/scenarios/SDN1/diagnose
//	curl -X POST localhost:8080/scenarios/SDN1/autoref
//
// Diagnoses run concurrently, each against a private clone of the
// scenario's replay session, bounded by -workers; excess load is shed
// with 429 + Retry-After. -diagnose-timeout bounds each diagnosis via
// its request context (0 disables the deadline).
//
// With -data-dir, each scenario's base-event log and checkpoints persist
// into an append-only segmented store under that directory (one
// subdirectory per scenario). On restart — including after a crash that
// tore the active segment — the server recovers the durable prefix,
// re-drives the deterministic build against it, and reuses stored
// checkpoints, so diagnoses resume with identical results.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/scenarios"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	scaleStr := flag.String("scale", "small", "workload scale: small or paper")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent diagnoses (default GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 1, "candidate-evaluation fan-out inside each diagnosis (results are identical at any value)")
	diagTimeout := flag.Duration("diagnose-timeout", 0, "per-diagnosis deadline (0 = none)")
	dataDir := flag.String("data-dir", "", "persist scenario logs and checkpoints under this directory (crash-safe; empty = in-memory)")
	prefixCache := flag.Int("prefix-cache", 0, "materialized prefix engines kept per scenario (0 = replay default of 8)")
	flag.Parse()

	scale := scenarios.Small
	if *scaleStr == "paper" {
		scale = scenarios.Paper
	}
	opts := []server.Option{server.WithWorkers(*workers), server.WithParallelism(*parallelism)}
	if *dataDir != "" {
		opts = append(opts, server.WithDataDir(*dataDir))
	}
	if *prefixCache > 0 {
		opts = append(opts, server.WithPrefixCacheSize(*prefixCache))
	}
	handler := server.New(scale, opts...).Handler()
	if *diagTimeout > 0 {
		handler = withTimeout(handler, *diagTimeout)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("diffprovd listening on %s (scale=%s, workers=%d, parallelism=%d)", *addr, *scaleStr, *workers, *parallelism)
	log.Fatal(srv.ListenAndServe())
}

// withTimeout bounds every request's context; diagnoses observe the
// deadline between reasoning rounds and inside counterfactual replays.
func withTimeout(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
