// Command benchtab regenerates every table and figure of the paper's
// evaluation section on the simulated substrate, printing the same rows
// and series the paper reports (see EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	benchtab -all
//	benchtab -table1 -scale paper
//	benchtab -fig5 -fig6
//	benchtab -fig7 -fig8
//	benchtab -latency
//	benchtab -stanford
//	benchtab -refcheck
//	benchtab -coldstart
//	benchtab -fork
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/evaluation"
	"repro/internal/scenarios"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run everything")
		table1    = flag.Bool("table1", false, "Table 1: vertexes returned per diagnostic technique")
		fig5      = flag.Bool("fig5", false, "Figure 5: logging rate vs traffic rate")
		fig6      = flag.Bool("fig6", false, "Figure 6: logging rate vs packet size")
		fig7      = flag.Bool("fig7", false, "Figure 7: query turnaround, DiffProv vs Y!")
		fig8      = flag.Bool("fig8", false, "Figure 8: reasoning-time decomposition")
		latency   = flag.Bool("latency", false, "§6.4: runtime latency overheads")
		stanford  = flag.Bool("stanford", false, "§6.7: Stanford backbone diagnosis")
		refcheck  = flag.Bool("refcheck", false, "§6.3: unsuitable-reference queries")
		coldstart = flag.Bool("coldstart", false, "segmented-store cold start: record SDN1, replay it out of segments")
		fork      = flag.Bool("fork", false, "prefix fork cost: copy-on-write vs deep fork by state size")
		delta     = flag.Bool("delta", false, "delta replay ablation: diagnosis with semi-naïve delta trials vs full-suffix re-fire")
		scaleStr  = flag.String("scale", "small", "workload scale: small or paper")
	)
	flag.Parse()

	scale := scenarios.Small
	switch *scaleStr {
	case "small":
	case "paper":
		scale = scenarios.Paper
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown scale %q\n", *scaleStr)
		os.Exit(2)
	}
	if *all {
		*table1, *fig5, *fig6, *fig7, *fig8, *latency, *stanford, *refcheck, *coldstart, *fork, *delta =
			true, true, true, true, true, true, true, true, true, true, true
	}
	if !(*table1 || *fig5 || *fig6 || *fig7 || *fig8 || *latency || *stanford || *refcheck || *coldstart || *fork || *delta) {
		flag.Usage()
		os.Exit(2)
	}
	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}

	if *table1 {
		fmt.Println("== Table 1: number of vertexes returned (paper: trees 10^2-10^3, plain diff comparable, DiffProv 1-2) ==")
		rows, err := scenarios.Table1(scale)
		die(err)
		fmt.Printf("%-8s %10s %10s %12s %10s\n", "Query", "Good(T_G)", "Bad(T_B)", "Plain diff", "DiffProv")
		for _, r := range rows {
			per := ""
			for i, v := range r.DiffProv {
				if i > 0 {
					per += "/"
				}
				per += fmt.Sprintf("%d", v)
			}
			fmt.Printf("%-8s %10d %10d %12d %10s\n", r.Scenario, r.GoodTree, r.BadTree, r.PlainDiff, per)
		}
		fmt.Println()
	}

	if *fig5 {
		fmt.Println("== Figure 5: logging rate vs traffic rate (500 B packets; paper: linear, under 400 MB/s SSD budget) ==")
		rows, err := evaluation.Figure5(0)
		die(err)
		for _, r := range rows {
			fmt.Printf("%10s bps -> %14s\n", fmtRate(r.RateBps), evaluation.FormatBytesPerSec(r.LogBytesSec))
		}
		fmt.Println()
	}

	if *fig6 {
		fmt.Println("== Figure 6: logging rate vs packet size at 1 Gbps (paper: decreasing) ==")
		rows, err := evaluation.Figure6(0)
		die(err)
		for _, r := range rows {
			fmt.Printf("%5d B packets -> %14s\n", r.PacketSize, evaluation.FormatBytesPerSec(r.LogBytesSec))
		}
		fmt.Println()
	}

	if *fig7 {
		fmt.Println("== Figure 7: query turnaround (paper: DiffProv ≈ 2x Y!, replay dominates) ==")
		rows, err := evaluation.Figure7(scale)
		die(err)
		fmt.Printf("%-8s %14s %14s %14s %14s %12s %12s %10s %8s %7s\n",
			"Query", "Y!", "DiffProv", "(replay)", "(reasoning)", "prefix h/m", "evts skipped", "fp hits", "deduped", "sliced")
		for _, r := range rows {
			fmt.Printf("%-8s %14v %14v %14v %14v %7d/%-4d %12d %10d %8d %7d\n",
				r.Scenario, r.YBang, r.DiffProv, r.DiffProvReplay, r.DiffProvReason,
				r.Replay.PrefixHits, r.Replay.PrefixMisses, r.Replay.EventsSkipped,
				r.Diag.FingerprintHits, r.Diag.CandidatesDeduped, r.Diag.CandidatesSliced)
		}
		fmt.Println()
	}

	if *fig8 {
		fmt.Println("== Figure 8: DiffProv reasoning decomposition (paper: ≤3.8 ms total) ==")
		rows, err := evaluation.Figure8(scale)
		die(err)
		fmt.Printf("%-8s %14s %14s %14s %14s\n", "Query", "FindSeed", "Divergence", "MakeAppear", "UpdateTree")
		for _, r := range rows {
			fmt.Printf("%-8s %14v %14v %14v %14v\n", r.Scenario,
				r.Timings.FindSeed, r.Timings.Divergence, r.Timings.MakeAppear, r.Timings.UpdateTree)
		}
		fmt.Println()
	}

	if *latency {
		fmt.Println("== §6.4: runtime latency overheads (paper: SDN 6.7%; MR 2.3% -> 0.2% with cached checksums) ==")
		res, err := evaluation.MeasureLatency(0, 0)
		die(err)
		fmt.Printf("SDN logging overhead:                 %6.1f%%\n", res.SDNOverhead*100)
		fmt.Printf("MR reporting overhead (per-record):   %6.1f%%\n", res.MROverhead*100)
		fmt.Printf("MR reporting overhead (cached sums):  %6.1f%%\n", res.MROverheadCachedChecksums*100)
		fmt.Println("(the in-process simulator has no disk/network I/O to dilute the MR numbers;")
		fmt.Println(" the shape — caching shrinks the overhead — is the reproduced result)")
		fmt.Println()
	}

	if *stanford {
		cfg := evaluation.StanfordConfig{Seed: 1}
		if scale == scenarios.Paper {
			cfg.ForwardingEntries = 50000
			cfg.ACLRules = 1500
			cfg.BackgroundPackets = 2000
		}
		fmt.Println("== §6.7: Stanford backbone forwarding error ==")
		res, err := evaluation.Stanford(cfg)
		die(err)
		fmt.Printf("trees: good %d, bad %d; plain diff %d (paper: 67/75, diff 108)\n",
			res.GoodTree, res.BadTree, res.PlainDiff)
		fmt.Printf("Δ = %d change(s); fault identified: %v; turnaround %v\n",
			res.Changes, res.FoundFault, res.Turnaround)
		fmt.Println()
	}

	if *refcheck {
		fmt.Println("== §6.3: unsuitable references all fail with diagnostics ==")
		checks, err := scenarios.RandomReferenceChecks(scale, 5)
		die(err)
		for _, c := range checks {
			fmt.Printf("%-6s ref=%-55s -> %s\n", c.Scenario, c.Reference, c.Kind)
		}
		fmt.Println()
	}

	if *coldstart {
		fmt.Println("== Segmented-store cold start: SDN1 recorded to disk, replayed out of segments ==")
		res, err := evaluation.ColdStart(scale)
		die(err)
		fmt.Printf("recorded:  %d events, %d checkpoints into %d segment(s), %d bytes, in %v\n",
			res.Events, res.Checkpoints, res.Segments, res.StoreBytes, res.Record)
		fmt.Printf("recovered: cold start out of segments in %v (checkpoints reused, log verified)\n",
			res.Recover)
		fmt.Println()
	}

	if *delta {
		fmt.Println("== Delta replay ablation: counterfactual trials via semi-naïve delta vs full-suffix re-fire ==")
		rows, err := evaluation.DeltaReplay(scale)
		die(err)
		fmt.Printf("%-8s %14s %14s %9s %9s %9s %14s\n",
			"Query", "delta_ns", "suffix_ns", "refired", "skipped", "dirty", "suffix_refired")
		for _, r := range rows {
			fmt.Printf("%-8s %14d %14d %9d %9d %9d %14d\n",
				r.Scenario, r.Delta.Nanoseconds(), r.Suffix.Nanoseconds(),
				r.ReFired, r.Skipped, r.Dirty, r.SuffixReFired)
		}
		fmt.Println()
	}

	if *fork {
		fmt.Println("== Prefix fork cost: copy-on-write vs deep fork (engine + recorder, per counterfactual candidate) ==")
		rows, err := evaluation.ForkCost(nil, 0)
		die(err)
		fmt.Printf("%8s %6s %14s %14s\n", "N", "mode", "fork_ns", "fork_allocs")
		for _, r := range rows {
			fmt.Printf("%8d %6s %14.0f %14.1f\n", r.N, r.Mode, r.ForkNanos, r.ForkAllocs)
		}
		fmt.Println()
	}
}

func fmtRate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.0f G", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.0f M", bps/1e6)
	default:
		return fmt.Sprintf("%.0f", bps)
	}
}
