package diffprov_test

import (
	"fmt"

	diffprov "repro"
)

// Example diagnoses the paper's running example in miniature: an overly
// specific flow entry misroutes part of a subnet, and the differential
// provenance against a correctly-routed packet is the corrected entry.
func Example() {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Src) :-
    packet(@Sw, Src), flowEntry(@Sw, Prio, M, Nxt), matches(Src, M), argmax Prio.
`)
	sess := diffprov.NewSession(prog)
	fe := func(prio int64, m, nxt string) diffprov.Tuple {
		return diffprov.NewTuple("flowEntry",
			diffprov.Int(prio), diffprov.MustParsePrefix(m), diffprov.Str(nxt))
	}
	pkt := func(ip string) diffprov.Tuple {
		return diffprov.NewTuple("packet", diffprov.MustParseIP(ip))
	}
	sess.Insert("s1", fe(10, "4.3.2.0/24", "dpi"), 0) // typo: meant /23
	sess.Insert("s1", fe(1, "0.0.0.0/0", "web"), 0)
	sess.Insert("s1", pkt("4.3.2.1"), 10) // handled correctly
	sess.Insert("s1", pkt("4.3.3.1"), 20) // misrouted
	sess.Run()

	_, g, _ := sess.Graph()
	good := g.Tree(g.LastAppear("dpi", pkt("4.3.2.1")).ID)
	bad := g.Tree(g.LastAppear("web", pkt("4.3.3.1")).ID)
	world, _ := diffprov.NewWorld(sess)
	res, _ := diffprov.Diagnose(good, bad, world, diffprov.Options{})
	for _, c := range res.Changes {
		fmt.Println(c.Tuple)
	}
	// Output:
	// flowEntry(10, 4.3.2.0/23, "dpi")
}

// ExampleDiagnose_referenceErrors shows the §4.7 failure reporting: an
// incomparable reference yields a typed, explanatory error.
func ExampleDiagnose_referenceErrors() {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Src) :-
    packet(@Sw, Src), flowEntry(@Sw, Prio, M, Nxt), matches(Src, M), argmax Prio.
`)
	sess := diffprov.NewSession(prog)
	fe := diffprov.NewTuple("flowEntry",
		diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h"))
	pkt := diffprov.NewTuple("packet", diffprov.MustParseIP("1.1.1.1"))
	sess.Insert("s1", fe, 0)
	sess.Insert("s1", pkt, 5)
	sess.Run()

	_, g, _ := sess.Graph()
	// A flow entry is not a comparable reference for a packet event.
	good := g.Tree(g.LastAppear("s1", fe).ID)
	bad := g.Tree(g.LastAppear("h", pkt).ID)
	world, _ := diffprov.NewWorld(sess)
	_, err := diffprov.Diagnose(good, bad, world, diffprov.Options{})
	if de, ok := err.(*diffprov.DiagnosisError); ok {
		fmt.Println(de.Kind)
	}
	// Output:
	// seed type mismatch
}

// ExampleTree_Explain narrates a provenance tree's trigger chain.
func ExampleTree_Explain() {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Src) :-
    packet(@Sw, Src), flowEntry(@Sw, Prio, M, Nxt), matches(Src, M), argmax Prio.
`)
	sess := diffprov.NewSession(prog)
	sess.Insert("s1", diffprov.NewTuple("flowEntry",
		diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h")), 0)
	pkt := diffprov.NewTuple("packet", diffprov.MustParseIP("9.9.9.9"))
	sess.Insert("s1", pkt, 7)
	sess.Run()
	_, g, _ := sess.Graph()
	tree := g.Tree(g.LastAppear("h", pkt).ID)
	fmt.Print(tree.Explain())
	// Output:
	// Why did packet(9.9.9.9) appear on h?
	//  1. packet(9.9.9.9) entered the system at s1 (time t7.2).
	//  2. rule fw fired on s1, deriving packet(9.9.9.9)
	//     because: s1 held flowEntry(1, 0.0.0.0/0, "h") (since t0.1).
	// In total, the full explanation has 7 vertexes.
}
